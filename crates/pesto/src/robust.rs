//! Robustness analysis for placement plans: Monte-Carlo perturbation
//! sweeps and post-outage plan repair.
//!
//! The paper optimizes for clean conditions; real clusters have
//! stragglers, contended links, and the occasional dead device. This
//! module asks two questions of a finished [`Plan`]:
//!
//! 1. **How fragile is it?** [`evaluate_robustness`] replays the plan
//!    under `N` deterministic fault draws (see
//!    [`PerturbationSpec`][pesto_sim::PerturbationSpec]) and reports the
//!    makespan distribution (p50/p95/p99) plus which device hurts most
//!    when it straggles.
//! 2. **Can it survive an outage?** [`repair_after_outage`] removes a
//!    failed GPU from the cluster, keeps every placement on the
//!    survivors, re-places only the stranded operations (greedily, then —
//!    given a time budget — by bounded local search over the stranded
//!    ops and their neighbors), and re-derives an ETF schedule on the
//!    surviving cluster.
//! 3. **Is its profile still true?** [`replace_after_drift`] compares
//!    observed per-op times against the fitted profile
//!    ([`detect_drift`][pesto_cost::detect_drift]) and, when ops have
//!    drifted past their dispersion threshold, re-solves incrementally:
//!    every *non*-drifted group is pinned, so the search warm-started
//!    from the current placement only reconsiders what actually changed.

use crate::pipeline::PestoError;
use pesto_cost::{detect_drift, CommModel, DriftConfig, DriftReport};
use pesto_graph::{Cluster, DeviceId, DeviceKind, LinkType, OpId, Placement, Plan};
use pesto_ilp::{etf_schedule, HybridConfig, HybridSolver, IlpError};
use pesto_obs::{Obs, SolverEventKind};
use pesto_sim::{FaultPlan, PerturbationSpec, Simulator};
use serde::Serialize;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Schema version stamped into every serialized [`RobustnessReport`], as
/// `major.minor`. Readers should refuse majors they do not understand.
pub const ROBUSTNESS_SCHEMA_VERSION: &str = "1.0";

/// Configuration for [`evaluate_robustness`].
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Number of Monte-Carlo fault draws. Each draw is seeded
    /// deterministically from [`RobustnessConfig::seed`], so the same
    /// config always yields the same percentiles.
    pub draws: usize,
    /// Base seed for the sweep.
    pub seed: u64,
    /// The perturbation distribution each draw samples from.
    pub spec: PerturbationSpec,
    /// Straggler slowdown used for the per-device sensitivity probes.
    pub sensitivity_factor: f64,
    /// Number of pipelined training steps per simulation (see
    /// [`pesto_sim::Simulator::with_steps`]). With `steps > 1` every
    /// reported time is the *steady-state step time* instead of the
    /// single-step makespan, ranking plans by sustained throughput under
    /// faults. Defaults to 1.
    pub steps: usize,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            draws: 64,
            seed: 0x0b57,
            spec: PerturbationSpec::default(),
            sensitivity_factor: 1.5,
            steps: 1,
        }
    }
}

/// Makespan distribution of a plan under perturbation.
///
/// When [`RobustnessConfig::steps`] is greater than 1 every time below is
/// a *steady-state step time* (see
/// [`SimReport::steady_state_step_us`][pesto_sim::SimReport::steady_state_step_us])
/// rather than a single-step makespan.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessReport {
    /// Serialization format version ([`ROBUSTNESS_SCHEMA_VERSION`]).
    pub schema_version: String,
    /// Pipelined steps per simulation ([`RobustnessConfig::steps`]).
    pub steps: usize,
    /// Makespan under clean (fault-free) conditions, µs.
    pub clean_makespan_us: f64,
    /// Number of fault draws behind the percentiles.
    pub draws: usize,
    /// Mean perturbed makespan, µs.
    pub mean_us: f64,
    /// Median perturbed makespan (nearest-rank), µs.
    pub p50_us: f64,
    /// 95th-percentile perturbed makespan (nearest-rank), µs.
    pub p95_us: f64,
    /// 99th-percentile perturbed makespan (nearest-rank), µs.
    pub p99_us: f64,
    /// Worst perturbed makespan observed, µs.
    pub worst_us: f64,
    /// Makespan increase (vs clean) when GPU *i* alone straggles by
    /// [`RobustnessConfig::sensitivity_factor`], µs. Indexed like
    /// [`Cluster::gpus`].
    pub device_sensitivity_us: Vec<f64>,
    /// The GPU whose straggling hurts the makespan most, if any probe
    /// increased it.
    pub most_sensitive_device: Option<DeviceId>,
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Replays `plan` under `config.draws` deterministic fault draws and
/// reports the resulting makespan distribution plus per-device straggler
/// sensitivity.
///
/// The same `(plan, config)` pair always produces the same report: draw
/// `i` uses fault seed `config.seed + i`.
///
/// # Errors
///
/// * [`PestoError::InvalidConfig`] for a zero-draw sweep — percentiles
///   of an empty sample would be lies, not statistics;
/// * [`PestoError::NoGpus`] for a cluster with no surviving GPU;
/// * simulation failures, propagated as [`PestoError::Sim`]. A plan that
///   runs clean cannot fail under the sweep's faults (stragglers, jitter,
///   and degraded links only slow things down; the sweep injects no
///   outages).
pub fn evaluate_robustness(
    graph: &pesto_graph::FrozenGraph,
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    config: &RobustnessConfig,
) -> Result<RobustnessReport, PestoError> {
    if config.draws == 0 {
        return Err(PestoError::InvalidConfig(
            "robustness sweep needs at least one fault draw (draws == 0)".into(),
        ));
    }
    if cluster.gpu_count() == 0 {
        return Err(PestoError::NoGpus);
    }
    let steps = config.steps.max(1);
    let clean = Simulator::new(graph, cluster, comm)
        .with_steps(steps)
        .run(plan)?
        .steady_state_step_us();

    let mut samples = Vec::with_capacity(config.draws);
    for i in 0..config.draws {
        let faults = config
            .spec
            .draw(cluster, config.seed.wrapping_add(i as u64));
        let report = Simulator::new(graph, cluster, comm)
            .with_faults(faults)
            .with_steps(steps)
            .run(plan)?;
        samples.push(report.steady_state_step_us());
    }
    samples.sort_by(f64::total_cmp);

    // `draws >= 1` is enforced above, so the sample set is never empty
    // and every percentile is backed by a real observation.
    let (mean, p50, p95, p99, worst) = (
        samples.iter().sum::<f64>() / samples.len() as f64,
        percentile(&samples, 0.50),
        percentile(&samples, 0.95),
        percentile(&samples, 0.99),
        *samples.last().expect("non-empty"),
    );

    // Sensitivity probes: one straggler at a time, everything else clean.
    let mut sensitivity = Vec::with_capacity(cluster.gpu_count());
    for gpu in cluster.gpus() {
        let faults = FaultPlan::new(config.seed).with_straggler(gpu, config.sensitivity_factor);
        let perturbed = Simulator::new(graph, cluster, comm)
            .with_faults(faults)
            .with_steps(steps)
            .run(plan)?;
        sensitivity.push(perturbed.steady_state_step_us() - clean);
    }
    let most_sensitive = sensitivity
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .filter(|(_, &extra)| extra > 1e-9)
        .map(|(i, _)| cluster.gpus()[i]);

    Ok(RobustnessReport {
        schema_version: ROBUSTNESS_SCHEMA_VERSION.to_string(),
        steps,
        clean_makespan_us: clean,
        draws: config.draws,
        mean_us: mean,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        worst_us: worst,
        device_sensitivity_us: sensitivity,
        most_sensitive_device: most_sensitive,
    })
}

/// A plan repaired onto the surviving cluster after a device outage.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The surviving cluster (failed GPU removed, devices renumbered
    /// densely).
    pub cluster: Cluster,
    /// The repaired plan, valid on [`RepairOutcome::cluster`].
    pub plan: Plan,
    /// Simulated per-step time of the repaired plan on the survivors, µs.
    pub makespan_us: f64,
    /// How many operations had to move off the failed device.
    pub moved_ops: usize,
}

/// Repairs `plan` after `failed` dies: placements on surviving devices
/// are kept (renumbered), only the stranded operations are re-placed —
/// greedily, in topological order, onto the GPU minimizing accumulated
/// load plus cross-device transfer cost to already-placed neighbors,
/// subject to device memory — and the schedule is re-derived by ETF on
/// the surviving cluster.
///
/// With `budget == Duration::ZERO` the greedy placement is the answer: a
/// valid plan *now*, nothing re-searched. A positive `budget` buys a
/// bounded local search on top: hill climbing restricted to the stranded
/// ops and their direct neighbors (the only region the outage disturbed),
/// each flip scored by a full ETF re-schedule, stopping at the first
/// whole pass without improvement or when the budget expires — whichever
/// comes first. The search only ever replaces the greedy placement with
/// something that schedules strictly better, so any budget is safe.
///
/// # Errors
///
/// * [`PestoError::NoGpus`] if no GPU survives;
/// * [`PestoError::Repair`] if `failed` is not a GPU of `cluster` or a
///   stranded op fits on no surviving device;
/// * simulation errors from the final honest evaluation.
pub fn repair_after_outage(
    graph: &pesto_graph::FrozenGraph,
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    failed: DeviceId,
    budget: Duration,
) -> Result<RepairOutcome, PestoError> {
    let search_deadline = Instant::now() + budget;
    let survivors = cluster
        .without_gpu(failed)
        .map_err(|e| PestoError::Repair(format!("cannot remove {failed:?}: {e}")))?;
    if survivors.gpu_count() == 0 {
        return Err(PestoError::NoGpus);
    }
    // Dense renumbering: devices after the failed one shift down by one.
    let map = |old: DeviceId| {
        DeviceId::from_index(old.index() - usize::from(old.index() > failed.index()))
    };

    let mut placement = Placement::affinity_default(graph, &survivors);
    let mut stranded: Vec<OpId> = Vec::new();
    let mut load_us = vec![0.0f64; survivors.device_count()];
    let mut used_bytes = vec![0u64; survivors.device_count()];
    let mut placed = vec![false; graph.op_count()];
    for &op in graph.topo_order() {
        let old = plan.placement.device(op);
        if old == failed {
            stranded.push(op);
            continue;
        }
        let new = map(old);
        placement.set_device(op, new);
        placed[op.index()] = true;
        load_us[new.index()] += graph.op(op).compute_us();
        used_bytes[new.index()] =
            used_bytes[new.index()].saturating_add(graph.op(op).memory_bytes());
    }
    let moved_ops = stranded.len();

    let cpu = survivors.cpu();
    let link_type = |src: DeviceId, dst: DeviceId| {
        if src == cpu {
            LinkType::CpuToGpu
        } else if dst == cpu {
            LinkType::GpuToCpu
        } else {
            LinkType::GpuToGpu
        }
    };
    for &op in &stranded {
        let mem = graph.op(op).memory_bytes();
        let mut best: Option<(f64, DeviceId)> = None;
        for gpu in survivors.gpus() {
            let cap = survivors.devices()[gpu.index()].memory_bytes();
            if used_bytes[gpu.index()].saturating_add(mem) > cap {
                continue;
            }
            // Load so far plus the transfers this choice would create.
            let mut cost = load_us[gpu.index()];
            for &(pred, bytes) in graph.preds_with_bytes(op) {
                if placed[pred.index()] && placement.device(pred) != gpu {
                    cost += comm.transfer_us(link_type(placement.device(pred), gpu), bytes);
                }
            }
            for &(succ, bytes) in graph.succs_with_bytes(op) {
                if placed[succ.index()] && placement.device(succ) != gpu {
                    cost += comm.transfer_us(link_type(gpu, placement.device(succ)), bytes);
                }
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, gpu));
            }
        }
        let Some((_, gpu)) = best else {
            return Err(PestoError::Repair(format!(
                "stranded op {op:?} ({mem} bytes) fits on no surviving GPU"
            )));
        };
        placement.set_device(op, gpu);
        placed[op.index()] = true;
        load_us[gpu.index()] += graph.op(op).compute_us();
        used_bytes[gpu.index()] = used_bytes[gpu.index()].saturating_add(mem);
    }

    // Bounded local search on top of greedy (zero budget skips it): the
    // outage only disturbed the stranded ops and the neighbors they now
    // talk to, so flips are restricted to that region. Each flip is
    // scored by a full ETF re-schedule on the survivors; first-improvement
    // hill climbing repeats until a pass yields nothing or the budget
    // expires. Greedy is only ever replaced by something strictly better.
    if budget > Duration::ZERO && survivors.gpu_count() >= 2 && !stranded.is_empty() {
        let mut region: Vec<OpId> = Vec::new();
        let mut in_region = vec![false; graph.op_count()];
        for &op in &stranded {
            for cand in std::iter::once(op)
                .chain(graph.preds(op).iter().copied())
                .chain(graph.succs(op).iter().copied())
            {
                if !in_region[cand.index()] && graph.op(cand).kind() == DeviceKind::Gpu {
                    in_region[cand.index()] = true;
                    region.push(cand);
                }
            }
        }
        let sim = Simulator::new(graph, &survivors, comm).with_memory_check(false);
        let score_of = |p: Placement| -> Result<f64, PestoError> {
            Ok(etf_schedule(graph, &survivors, &comm, p, &sim)
                .map_err(IlpError::from)?
                .report
                .makespan_us)
        };
        let mut best_score = score_of(placement.clone())?;
        let expired = || Instant::now() >= search_deadline;
        'passes: loop {
            let mut improved = false;
            for &op in &region {
                if expired() {
                    break 'passes;
                }
                let current = placement.device(op);
                let mem = graph.op(op).memory_bytes();
                for gpu in survivors.gpus() {
                    if gpu == current {
                        continue;
                    }
                    let cap = survivors.devices()[gpu.index()].memory_bytes();
                    if used_bytes[gpu.index()].saturating_add(mem) > cap {
                        continue;
                    }
                    let mut cand = placement.clone();
                    cand.set_device(op, gpu);
                    let score = score_of(cand.clone())?;
                    if score < best_score - 1e-9 {
                        best_score = score;
                        used_bytes[current.index()] =
                            used_bytes[current.index()].saturating_sub(mem);
                        used_bytes[gpu.index()] = used_bytes[gpu.index()].saturating_add(mem);
                        placement = cand;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    let repaired = {
        let sim = Simulator::new(graph, &survivors, comm).with_memory_check(false);
        etf_schedule(graph, &survivors, &comm, placement, &sim)
            .map_err(pesto_ilp::IlpError::from)?
            .plan
    };
    repaired
        .validate(graph, &survivors)
        .map_err(|e| PestoError::Repair(format!("repaired plan is invalid: {e}")))?;
    let makespan_us = Simulator::new(graph, &survivors, comm)
        .run(&repaired)?
        .makespan_us;

    Ok(RepairOutcome {
        cluster: survivors,
        plan: repaired,
        makespan_us,
        moved_ops,
    })
}

/// Outcome of a drift-triggered incremental re-placement.
#[derive(Debug, Clone)]
pub struct DriftReplaceOutcome {
    /// What drifted and by how much.
    pub report: DriftReport,
    /// The plan to run from here on: the incrementally re-solved one if
    /// drift was found *and* the re-solve beat the old plan under the
    /// observed times, otherwise the old plan unchanged.
    pub plan: Plan,
    /// Simulated per-step time of [`DriftReplaceOutcome::plan`] under the
    /// observed op times, µs.
    pub makespan_us: f64,
    /// Simulated per-step time of the *old* plan under the observed op
    /// times, µs — the baseline the re-solve had to beat.
    pub old_makespan_us: f64,
    /// Whether the returned plan is the re-solved one.
    pub replaced: bool,
}

/// Incremental re-placement after profile drift: compares the observed
/// per-op times baked into `graph` against the profiled expectations
/// `expected_us` and, where ops drifted past their dispersion threshold
/// (see [`detect_drift`]), re-solves *only around them* — every op
/// outside a drifted colocation group is pinned, and the hybrid search
/// is warm-started from the current placement. Flagging emits a `drift`
/// solver event on `obs` whether or not a re-solve follows.
///
/// The re-solved plan only wins if it actually beats the old plan under
/// the observed times ([`DriftReplaceOutcome::replaced`]); drift
/// handling never makes things worse.
///
/// `search` bounds the incremental effort (iterations, restarts,
/// [`HybridConfig::deadline`]); pinning and warm-start fields on it are
/// overwritten.
///
/// # Errors
///
/// * [`PestoError::InvalidConfig`] if `expected_us` is not one
///   expectation per op of `graph`;
/// * [`PestoError::NoGpus`] for a GPU-less cluster;
/// * solver and simulation failures.
#[allow(clippy::too_many_arguments)]
pub fn replace_after_drift(
    graph: &pesto_graph::FrozenGraph,
    expected_us: &[f64],
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    drift: &DriftConfig,
    search: HybridConfig,
    obs: &Obs,
) -> Result<DriftReplaceOutcome, PestoError> {
    let observed: Vec<Option<f64>> = graph
        .op_ids()
        .map(|id| Some(graph.op(id).compute_us()))
        .collect();
    drift_replace_core(
        graph,
        expected_us,
        &observed,
        cluster,
        comm,
        plan,
        drift,
        search,
        obs,
    )
}

/// Like [`replace_after_drift`], but fed a *live* observation vector
/// (one entry per op; `None` for ops with no measurement) instead of
/// times baked into the graph — the shape produced by
/// [`pesto_sim::SimReport::observed_op_us`]. A copy of `graph` with the
/// finite positive observations substituted for the modeled compute
/// times is what gets re-simulated and re-solved, so the "never worse"
/// comparison runs under what was actually measured.
///
/// # Errors
///
/// As [`replace_after_drift`], plus [`PestoError::InvalidConfig`] if
/// `observed_us` is not one entry per op.
#[allow(clippy::too_many_arguments)]
pub fn replace_after_drift_observed(
    graph: &pesto_graph::FrozenGraph,
    expected_us: &[f64],
    observed_us: &[Option<f64>],
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    drift: &DriftConfig,
    search: HybridConfig,
    obs: &Obs,
) -> Result<DriftReplaceOutcome, PestoError> {
    if observed_us.len() != graph.op_count() {
        return Err(PestoError::InvalidConfig(format!(
            "observed_us has {} entries for a {}-op graph",
            observed_us.len(),
            graph.op_count()
        )));
    }
    let mut thawed = graph.clone().thaw();
    for (i, obs_us) in observed_us.iter().enumerate() {
        if let Some(v) = *obs_us {
            if v.is_finite() && v > 0.0 {
                thawed.op_mut(OpId::from_index(i)).set_compute_us(v);
            }
        }
    }
    let observed_graph = thawed
        .freeze()
        .map_err(|e| PestoError::InvalidConfig(format!("observed graph: {e}")))?;
    drift_replace_core(
        &observed_graph,
        expected_us,
        observed_us,
        cluster,
        comm,
        plan,
        drift,
        search,
        obs,
    )
}

/// The end of the observe→act loop: feeds a simulation report's spans
/// straight into drift detection and incremental re-placement. Sugar for
/// [`replace_after_drift_observed`] over
/// [`pesto_sim::SimReport::observed_op_us`].
///
/// # Errors
///
/// As [`replace_after_drift_observed`].
#[allow(clippy::too_many_arguments)]
pub fn replace_after_drift_from_report(
    graph: &pesto_graph::FrozenGraph,
    expected_us: &[f64],
    report: &pesto_sim::SimReport,
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    drift: &DriftConfig,
    search: HybridConfig,
    obs: &Obs,
) -> Result<DriftReplaceOutcome, PestoError> {
    let observed = report.observed_op_us(graph.op_count());
    replace_after_drift_observed(
        graph,
        expected_us,
        &observed,
        cluster,
        comm,
        plan,
        drift,
        search,
        obs,
    )
}

/// Shared tail of the drift-replace entry points: `graph` carries the
/// observed times (either baked in by the caller or substituted from a
/// live observation vector), `observed` is the vector handed to
/// [`detect_drift`].
#[allow(clippy::too_many_arguments)]
fn drift_replace_core(
    graph: &pesto_graph::FrozenGraph,
    expected_us: &[f64],
    observed: &[Option<f64>],
    cluster: &Cluster,
    comm: CommModel,
    plan: &Plan,
    drift: &DriftConfig,
    mut search: HybridConfig,
    obs: &Obs,
) -> Result<DriftReplaceOutcome, PestoError> {
    if expected_us.len() != graph.op_count() {
        return Err(PestoError::InvalidConfig(format!(
            "expected_us has {} entries for a {}-op graph",
            expected_us.len(),
            graph.op_count()
        )));
    }
    if cluster.gpu_count() == 0 {
        return Err(PestoError::NoGpus);
    }
    let report = detect_drift(expected_us, observed, drift);
    if obs.is_enabled() {
        obs.solver_event(
            "robust.drift",
            SolverEventKind::Drift {
                ops_flagged: report.drifted.len() as u64,
                max_drift_frac: report.max_drift_frac,
                threshold_frac: report.threshold_frac,
            },
        );
    }
    let old_makespan_us = Simulator::new(graph, cluster, comm).run(plan)?.makespan_us;
    if !report.any() {
        return Ok(DriftReplaceOutcome {
            report,
            plan: plan.clone(),
            makespan_us: old_makespan_us,
            old_makespan_us,
            replaced: false,
        });
    }

    // Unfreeze exactly the drifted region: a drifted op unpins its whole
    // colocation group (groups move as one unit in the search), every
    // other op stays pinned to its current device.
    let mut pinned = vec![true; graph.op_count()];
    let mut drifted_groups: HashSet<u32> = HashSet::new();
    for &i in &report.drifted {
        pinned[i] = false;
        if let Some(gid) = graph.op(OpId::from_index(i)).colocation_group() {
            drifted_groups.insert(gid);
        }
    }
    for id in graph.op_ids() {
        if let Some(gid) = graph.op(id).colocation_group() {
            if drifted_groups.contains(&gid) {
                pinned[id.index()] = false;
            }
        }
    }
    search.pinned = Some(pinned);
    search.resume_from = None;
    search.initial_placements.insert(0, plan.placement.clone());
    if !search.obs.is_enabled() {
        search.obs = obs.clone();
    }
    let outcome = HybridSolver::new(search).solve(graph, cluster, &comm)?;
    let new_makespan_us = Simulator::new(graph, cluster, comm)
        .run(&outcome.plan)?
        .makespan_us;

    if new_makespan_us < old_makespan_us {
        Ok(DriftReplaceOutcome {
            report,
            plan: outcome.plan,
            makespan_us: new_makespan_us,
            old_makespan_us,
            replaced: true,
        })
    } else {
        Ok(DriftReplaceOutcome {
            report,
            plan: plan.clone(),
            makespan_us: old_makespan_us,
            old_makespan_us,
            replaced: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pesto, PestoConfig};
    use pesto_models::ModelSpec;

    fn comm() -> CommModel {
        CommModel::default_v100()
    }

    #[test]
    fn robustness_sweep_is_deterministic_and_ordered() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let config = RobustnessConfig {
            draws: 16,
            ..RobustnessConfig::default()
        };
        let a = evaluate_robustness(&graph, &cluster, comm(), &outcome.plan, &config).unwrap();
        let b = evaluate_robustness(&graph, &cluster, comm(), &outcome.plan, &config).unwrap();
        assert_eq!(a.p50_us, b.p50_us);
        assert_eq!(a.p95_us, b.p95_us);
        assert_eq!(a.p99_us, b.p99_us);
        assert!(
            a.clean_makespan_us <= a.p50_us + 1e-9,
            "faults only slow things down"
        );
        assert!(a.p50_us <= a.p95_us && a.p95_us <= a.p99_us && a.p99_us <= a.worst_us);
        assert_eq!(a.device_sensitivity_us.len(), cluster.gpu_count());
    }

    #[test]
    fn pipelined_robustness_measures_steady_state_step_time() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let single = evaluate_robustness(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            &RobustnessConfig {
                draws: 8,
                ..RobustnessConfig::default()
            },
        )
        .unwrap();
        let piped = evaluate_robustness(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            &RobustnessConfig {
                draws: 8,
                steps: 4,
                ..RobustnessConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single.steps, 1);
        assert_eq!(piped.steps, 4);
        // Per-step steady-state time never exceeds the one-shot makespan:
        // overlap can only help, back-to-back execution is the worst case.
        assert!(piped.clean_makespan_us <= single.clean_makespan_us + 1e-9);
        assert!(piped.p50_us <= piped.p95_us && piped.p95_us <= piped.p99_us);
    }

    #[test]
    fn sensitivity_identifies_a_loaded_device() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let report = evaluate_robustness(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            &RobustnessConfig {
                draws: 4,
                ..RobustnessConfig::default()
            },
        )
        .unwrap();
        // Some GPU carries critical-path work, so slowing it must hurt.
        assert!(report.most_sensitive_device.is_some());
    }

    #[test]
    fn repair_moves_only_stranded_ops_and_validates() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::homogeneous(3, 1 << 34);
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let failed = cluster.gpus()[1];
        let stranded: Vec<OpId> = graph
            .op_ids()
            .filter(|&op| outcome.plan.placement.device(op) == failed)
            .collect();
        let repair = repair_after_outage(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            failed,
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(repair.moved_ops, stranded.len());
        assert_eq!(repair.cluster.gpu_count(), cluster.gpu_count() - 1);
        assert!(repair.makespan_us > 0.0);
        // Ops that were NOT on the failed device kept their (renumbered)
        // placement.
        for op in graph.op_ids() {
            let old = outcome.plan.placement.device(op);
            if old == failed {
                continue;
            }
            let expect =
                DeviceId::from_index(old.index() - usize::from(old.index() > failed.index()));
            assert_eq!(repair.plan.placement.device(op), expect);
        }
    }

    #[test]
    fn zero_draw_sweep_is_a_typed_error() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let err = evaluate_robustness(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            &RobustnessConfig {
                draws: 0,
                ..RobustnessConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PestoError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn sweeping_an_all_dead_cluster_is_a_typed_error() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let full = Cluster::homogeneous(1, 1 << 34);
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &full)
            .unwrap();
        let dead = full.without_gpu(full.gpus()[0]).unwrap();
        let err = evaluate_robustness(
            &graph,
            &dead,
            comm(),
            &outcome.plan,
            &RobustnessConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, PestoError::NoGpus);
    }

    #[test]
    fn reports_carry_the_schema_version() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let report = evaluate_robustness(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            &RobustnessConfig {
                draws: 2,
                ..RobustnessConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.schema_version, ROBUSTNESS_SCHEMA_VERSION);
    }

    #[test]
    fn budgeted_repair_never_loses_to_greedy() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::homogeneous(3, 1 << 34);
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let failed = cluster.gpus()[1];
        let greedy = repair_after_outage(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            failed,
            Duration::ZERO,
        )
        .unwrap();
        let budgeted = repair_after_outage(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            failed,
            Duration::from_millis(500),
        )
        .unwrap();
        assert_eq!(budgeted.moved_ops, greedy.moved_ops);
        assert!(
            budgeted.makespan_us <= greedy.makespan_us + 1e-9,
            "local search regressed: {} > {}",
            budgeted.makespan_us,
            greedy.makespan_us
        );
        assert!(budgeted.plan.validate(&graph, &budgeted.cluster).is_ok());
    }

    #[test]
    fn clean_observations_leave_the_plan_alone() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig {
            profiler_iterations: None,
            ..PestoConfig::fast()
        })
        .place(&graph, &cluster)
        .unwrap();
        let expected: Vec<f64> = graph.op_ids().map(|id| graph.op(id).compute_us()).collect();
        let out = replace_after_drift(
            &graph,
            &expected,
            &cluster,
            comm(),
            &outcome.plan,
            &pesto_cost::DriftConfig::default(),
            HybridConfig::quick(),
            &Obs::disabled(),
        )
        .unwrap();
        assert!(!out.report.any());
        assert!(!out.replaced);
        assert_eq!(out.plan.placement, outcome.plan.placement);
        assert_eq!(out.makespan_us, out.old_makespan_us);
    }

    #[test]
    fn drift_replacement_flags_drift_and_never_loses_to_the_stale_plan() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig {
            profiler_iterations: None,
            ..PestoConfig::fast()
        })
        .place(&graph, &cluster)
        .unwrap();
        let expected: Vec<f64> = graph.op_ids().map(|id| graph.op(id).compute_us()).collect();

        // Reality shifts: the three heaviest GPU ops now run 2.5x slower
        // than their profile (contention, throttling — the profile lied).
        let mut heavy: Vec<OpId> = graph
            .op_ids()
            .filter(|&id| graph.op(id).kind() == DeviceKind::Gpu)
            .collect();
        heavy.sort_by(|&a, &b| {
            graph
                .op(b)
                .compute_us()
                .total_cmp(&graph.op(a).compute_us())
        });
        let mut thawed = graph.clone().thaw();
        for &id in heavy.iter().take(3) {
            let t = thawed.op(id).compute_us();
            thawed.op_mut(id).set_compute_us(t * 2.5);
        }
        let observed = thawed.freeze().unwrap();

        let obs = Obs::enabled();
        let out = replace_after_drift(
            &observed,
            &expected,
            &cluster,
            comm(),
            &outcome.plan,
            &pesto_cost::DriftConfig::default(),
            HybridConfig::quick(),
            &obs,
        )
        .unwrap();
        assert!(out.report.any(), "2.5x on heavy ops must be flagged");
        assert!(
            out.makespan_us <= out.old_makespan_us + 1e-9,
            "drift handling made things worse"
        );
        assert!(out.plan.validate(&observed, &cluster).is_ok());
        assert!(
            obs.solver_events()
                .iter()
                .any(|e| matches!(e.kind, SolverEventKind::Drift { .. })),
            "drift solver event missing"
        );
    }

    #[test]
    fn drift_replacement_rejects_a_mismatched_expectation_vector() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let err = replace_after_drift(
            &graph,
            &[1.0, 2.0],
            &cluster,
            comm(),
            &outcome.plan,
            &pesto_cost::DriftConfig::default(),
            HybridConfig::quick(),
            &Obs::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, PestoError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn repair_with_no_survivors_is_no_gpus() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::homogeneous(1, 1 << 34);
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let err = repair_after_outage(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            cluster.gpus()[0],
            Duration::ZERO,
        )
        .unwrap_err();
        assert_eq!(err, PestoError::NoGpus);
    }

    #[test]
    fn repair_rejects_a_non_gpu_device() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let err = repair_after_outage(
            &graph,
            &cluster,
            comm(),
            &outcome.plan,
            cluster.cpu(),
            Duration::ZERO,
        )
        .unwrap_err();
        assert!(matches!(err, PestoError::Repair(_)));
    }
}
