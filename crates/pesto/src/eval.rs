//! Uniform plan evaluation for the experiment harness: every strategy's
//! plan — Pesto's or a baseline's — is judged by the same simulator, with
//! OOM reported as an outcome rather than an error (Figure 7 displays
//! Expert's OOMs as such).

use pesto_cost::CommModel;
use pesto_graph::{Cluster, DeviceId, FrozenGraph, Plan};
use pesto_sim::{SimError, Simulator};
use serde::{Deserialize, Serialize};

/// Outcome of running one training step under a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The step completed.
    Ok {
        /// Per-step training time, µs.
        makespan_us: f64,
    },
    /// The placement exceeds device memory (TensorFlow would abort).
    Oom {
        /// Devices that overflowed.
        devices: Vec<DeviceId>,
    },
    /// The plan could not be executed (invalid or deadlocked schedule).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

impl StepOutcome {
    /// The makespan if the step completed.
    pub fn makespan_us(&self) -> Option<f64> {
        match self {
            StepOutcome::Ok { makespan_us } => Some(*makespan_us),
            _ => None,
        }
    }

    /// Whether this outcome is an OOM.
    pub fn is_oom(&self) -> bool {
        matches!(self, StepOutcome::Oom { .. })
    }
}

/// Simulates one training step of `plan` and classifies the outcome.
///
/// # Example
///
/// ```
/// use pesto::graph::{OpGraph, DeviceKind, Cluster, Placement, Plan};
/// use pesto::cost::CommModel;
/// use pesto::evaluate_plan;
///
/// let mut g = OpGraph::new("one");
/// g.add_op("op", DeviceKind::Gpu, 42.0, 16);
/// let g = g.freeze().unwrap();
/// let cluster = Cluster::two_gpus();
/// let plan = Plan::placement_only(Placement::affinity_default(&g, &cluster));
/// let outcome = evaluate_plan(&g, &cluster, &CommModel::default_v100(), &plan, 0);
/// assert_eq!(outcome.makespan_us(), Some(42.0));
/// ```
pub fn evaluate_plan(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    plan: &Plan,
    seed: u64,
) -> StepOutcome {
    let sim = Simulator::new(graph, cluster, *comm).with_seed(seed);
    match sim.run(plan) {
        Ok(report) => StepOutcome::Ok {
            makespan_us: report.makespan_us,
        },
        Err(SimError::OutOfMemory(devices)) => StepOutcome::Oom { devices },
        Err(e) => StepOutcome::Failed {
            reason: e.to_string(),
        },
    }
}

/// Simulates `plan` under `seeds` different TensorFlow-default scheduling
/// seeds and averages the per-step times. Plans with explicit orders are
/// deterministic, so one run suffices and the average equals
/// [`evaluate_plan`]; for placement-only plans this averages out the
/// dispatch randomness the paper's §2.1 describes.
///
/// Returns `None` if any seed fails (OOM fails identically for all seeds,
/// so a single [`evaluate_plan`] call diagnoses the cause).
pub fn evaluate_plan_avg(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    plan: &Plan,
    seeds: u64,
) -> Option<f64> {
    let runs = if plan.order.is_some() { 1 } else { seeds.max(1) };
    let mut total = 0.0;
    for seed in 0..runs {
        total += evaluate_plan(graph, cluster, comm, plan, seed).makespan_us()?;
    }
    Some(total / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::{DeviceKind, OpGraph, Placement};

    #[test]
    fn classifies_ok_and_oom() {
        let mut g = OpGraph::new("t");
        g.add_op("fat", DeviceKind::Gpu, 1.0, 2_000);
        let g = g.freeze().unwrap();
        let small = Cluster::homogeneous(2, 1_000);
        let big = Cluster::homogeneous(2, 10_000);
        let comm = CommModel::default_v100();
        let plan = Plan::placement_only(Placement::affinity_default(&g, &small));

        assert!(evaluate_plan(&g, &small, &comm, &plan, 0).is_oom());
        let ok = evaluate_plan(&g, &big, &comm, &plan, 0);
        assert_eq!(ok.makespan_us(), Some(1.0));
    }

    #[test]
    fn averaging_over_seeds() {
        let mut g = OpGraph::new("t");
        for i in 0..6 {
            g.add_op(format!("op{i}"), DeviceKind::Gpu, (i + 1) as f64, 64);
        }
        let g = g.freeze().unwrap();
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let plan = Plan::placement_only(Placement::affinity_default(&g, &cluster));
        let avg = evaluate_plan_avg(&g, &cluster, &comm, &plan, 5).unwrap();
        // All on one device: order is irrelevant, avg equals the serial sum.
        assert!((avg - 21.0).abs() < 1e-9);
        // OOM propagates as None.
        let tiny = Cluster::homogeneous(2, 1);
        let p2 = Plan::placement_only(Placement::affinity_default(&g, &tiny));
        assert!(evaluate_plan_avg(&g, &tiny, &comm, &p2, 3).is_none());
    }

    #[test]
    fn classifies_invalid_plans_as_failed() {
        let mut g = OpGraph::new("t");
        g.add_op("gpu", DeviceKind::Gpu, 1.0, 0);
        let g = g.freeze().unwrap();
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let bad = Plan::placement_only(Placement::uniform(1, cluster.cpu()));
        assert!(matches!(
            evaluate_plan(&g, &cluster, &comm, &bad, 0),
            StepOutcome::Failed { .. }
        ));
    }
}
