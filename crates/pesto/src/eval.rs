//! Uniform plan evaluation for the experiment harness: every strategy's
//! plan — Pesto's or a baseline's — is judged by the same simulator, with
//! OOM reported as an outcome rather than an error (Figure 7 displays
//! Expert's OOMs as such).

use pesto_cost::CommModel;
use pesto_graph::{Cluster, DeviceId, FrozenGraph, Plan};
use pesto_sim::{PipelineStats, SimError, Simulator};
use serde::{Deserialize, Serialize};

/// Outcome of running one training step under a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The step completed.
    Ok {
        /// Per-step training time, µs.
        makespan_us: f64,
    },
    /// The placement exceeds device memory (TensorFlow would abort).
    Oom {
        /// Devices that overflowed.
        devices: Vec<DeviceId>,
    },
    /// The plan could not be executed (invalid or deadlocked schedule).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

impl StepOutcome {
    /// The makespan if the step completed.
    pub fn makespan_us(&self) -> Option<f64> {
        match self {
            StepOutcome::Ok { makespan_us } => Some(*makespan_us),
            _ => None,
        }
    }

    /// Whether this outcome is an OOM.
    pub fn is_oom(&self) -> bool {
        matches!(self, StepOutcome::Oom { .. })
    }
}

/// Simulates one training step of `plan` and classifies the outcome.
///
/// # Example
///
/// ```
/// use pesto::graph::{OpGraph, DeviceKind, Cluster, Placement, Plan};
/// use pesto::cost::CommModel;
/// use pesto::evaluate_plan;
///
/// let mut g = OpGraph::new("one");
/// g.add_op("op", DeviceKind::Gpu, 42.0, 16);
/// let g = g.freeze().unwrap();
/// let cluster = Cluster::two_gpus();
/// let plan = Plan::placement_only(Placement::affinity_default(&g, &cluster));
/// let outcome = evaluate_plan(&g, &cluster, &CommModel::default_v100(), &plan, 0);
/// assert_eq!(outcome.makespan_us(), Some(42.0));
/// ```
pub fn evaluate_plan(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    plan: &Plan,
    seed: u64,
) -> StepOutcome {
    let sim = Simulator::new(graph, cluster, *comm).with_seed(seed);
    match sim.run(plan) {
        Ok(report) => StepOutcome::Ok {
            makespan_us: report.makespan_us,
        },
        Err(SimError::OutOfMemory(devices)) => StepOutcome::Oom { devices },
        Err(e) => StepOutcome::Failed {
            reason: e.to_string(),
        },
    }
}

/// Outcome of a multi-step pipelined evaluation: the classified result
/// plus, when the run succeeded with more than one step, the per-step
/// pipeline breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinedOutcome {
    /// Classified result; `Ok.makespan_us` is the *full K-step* makespan.
    pub outcome: StepOutcome,
    /// Fill/steady-state/drain breakdown; `None` for `steps <= 1` or
    /// failed runs.
    pub pipeline: Option<PipelineStats>,
}

impl PipelinedOutcome {
    /// The effective per-step time for ranking placements by sustained
    /// throughput: the steady-state step time when pipelining, the
    /// makespan otherwise; `None` if the run failed.
    pub fn step_time_us(&self) -> Option<f64> {
        match (&self.outcome, &self.pipeline) {
            (StepOutcome::Ok { .. }, Some(p)) => Some(p.steady_step_us),
            (StepOutcome::Ok { makespan_us }, None) => Some(*makespan_us),
            _ => None,
        }
    }
}

/// Simulates `steps` pipelined training steps of `plan` and classifies
/// the outcome. With `steps = 1` this is [`evaluate_plan`] plus an empty
/// pipeline breakdown; with more steps, consecutive steps overlap and
/// [`PipelinedOutcome::step_time_us`] reports the sustained step time
/// (see [`pesto_sim::Simulator::with_steps`]).
pub fn evaluate_plan_pipelined(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    plan: &Plan,
    seed: u64,
    steps: usize,
) -> PipelinedOutcome {
    let sim = Simulator::new(graph, cluster, *comm)
        .with_seed(seed)
        .with_steps(steps);
    match sim.run(plan) {
        Ok(report) => PipelinedOutcome {
            outcome: StepOutcome::Ok {
                makespan_us: report.makespan_us,
            },
            pipeline: report.pipeline,
        },
        Err(SimError::OutOfMemory(devices)) => PipelinedOutcome {
            outcome: StepOutcome::Oom { devices },
            pipeline: None,
        },
        Err(e) => PipelinedOutcome {
            outcome: StepOutcome::Failed {
                reason: e.to_string(),
            },
            pipeline: None,
        },
    }
}

/// Simulates `plan` under `seeds` different TensorFlow-default scheduling
/// seeds and averages the per-step times. Plans with explicit orders are
/// deterministic, so one run suffices and the average equals
/// [`evaluate_plan`]; for placement-only plans this averages out the
/// dispatch randomness the paper's §2.1 describes.
///
/// Returns `None` if any seed fails (OOM fails identically for all seeds,
/// so a single [`evaluate_plan`] call diagnoses the cause).
pub fn evaluate_plan_avg(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    plan: &Plan,
    seeds: u64,
) -> Option<f64> {
    let runs = if plan.order.is_some() {
        1
    } else {
        seeds.max(1)
    };
    let mut total = 0.0;
    for seed in 0..runs {
        total += evaluate_plan(graph, cluster, comm, plan, seed).makespan_us()?;
    }
    Some(total / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::{DeviceKind, OpGraph, Placement};

    #[test]
    fn classifies_ok_and_oom() {
        let mut g = OpGraph::new("t");
        g.add_op("fat", DeviceKind::Gpu, 1.0, 2_000);
        let g = g.freeze().unwrap();
        let small = Cluster::homogeneous(2, 1_000);
        let big = Cluster::homogeneous(2, 10_000);
        let comm = CommModel::default_v100();
        let plan = Plan::placement_only(Placement::affinity_default(&g, &small));

        assert!(evaluate_plan(&g, &small, &comm, &plan, 0).is_oom());
        let ok = evaluate_plan(&g, &big, &comm, &plan, 0);
        assert_eq!(ok.makespan_us(), Some(1.0));
    }

    #[test]
    fn averaging_over_seeds() {
        let mut g = OpGraph::new("t");
        for i in 0..6 {
            g.add_op(format!("op{i}"), DeviceKind::Gpu, (i + 1) as f64, 64);
        }
        let g = g.freeze().unwrap();
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let plan = Plan::placement_only(Placement::affinity_default(&g, &cluster));
        let avg = evaluate_plan_avg(&g, &cluster, &comm, &plan, 5).unwrap();
        // All on one device: order is irrelevant, avg equals the serial sum.
        assert!((avg - 21.0).abs() < 1e-9);
        // OOM propagates as None.
        let tiny = Cluster::homogeneous(2, 1);
        let p2 = Plan::placement_only(Placement::affinity_default(&g, &tiny));
        assert!(evaluate_plan_avg(&g, &tiny, &comm, &p2, 3).is_none());
    }

    #[test]
    fn pipelined_evaluation_reports_steady_state() {
        use pesto_graph::OpId;
        // a -> b split across two GPUs: pipelining overlaps steps.
        let mut g = OpGraph::new("pair");
        let _a = g.add_op("a", DeviceKind::Gpu, 10.0, 16);
        let b = g.add_op("b", DeviceKind::Gpu, 10.0, 16);
        g.add_edge(OpId::from_index(0), b, 1 << 20).unwrap();
        let g = g.freeze().unwrap();
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let mut p = Placement::affinity_default(&g, &cluster);
        p.set_device(b, cluster.gpu(1));
        let plan = Plan::placement_only(p);

        let one = evaluate_plan_pipelined(&g, &cluster, &comm, &plan, 0, 1);
        assert!(one.pipeline.is_none());
        assert_eq!(one.step_time_us(), one.outcome.makespan_us());

        let multi = evaluate_plan_pipelined(&g, &cluster, &comm, &plan, 0, 6);
        let steady = multi.step_time_us().unwrap();
        assert!(
            steady < one.step_time_us().unwrap(),
            "pipelining must beat single-step latency on a split plan"
        );
        assert!(multi.outcome.makespan_us().unwrap() > one.outcome.makespan_us().unwrap());
    }

    #[test]
    fn classifies_invalid_plans_as_failed() {
        let mut g = OpGraph::new("t");
        g.add_op("gpu", DeviceKind::Gpu, 1.0, 0);
        let g = g.freeze().unwrap();
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let bad = Plan::placement_only(Placement::uniform(1, cluster.cpu()));
        assert!(matches!(
            evaluate_plan(&g, &cluster, &comm, &bad, 0),
            StepOutcome::Failed { .. }
        ));
    }
}
