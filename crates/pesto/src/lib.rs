//! # Pesto: near-optimal joint placement and scheduling of DNN operations
//!
//! A from-scratch Rust reproduction of *"Towards Optimal Placement and
//! Scheduling of DNN Operations with Pesto"* (Hafeez, Sun, Gandhi, Liu —
//! Middleware 2021).
//!
//! Training a DNN that does not fit on one GPU requires *model
//! parallelism*: partitioning the operation DAG across GPUs. Pesto jointly
//! optimizes **where** each operation runs and **when**, by (1) estimating
//! per-op compute times and a linear communication model from profiles,
//! (2) coarsening the DAG with cycle-free batch merging, (3) solving a 0-1
//! ILP with precedence, non-overlap, link-congestion and memory-balance
//! constraints, and (4) expanding the coarse solution back to all
//! operations.
//!
//! This crate is the user-facing facade: the [`Pesto`] pipeline plus
//! re-exports of every subsystem crate. See `DESIGN.md` in the repository
//! for the full system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results.
//!
//! Beyond the paper's clean-conditions pipeline, a robustness layer asks
//! how plans behave when the cluster misbehaves: [`evaluate_robustness`]
//! replays a plan under deterministic fault draws (stragglers, jitter,
//! degraded links), [`repair_after_outage`] re-places stranded ops after
//! a GPU dies, and [`PestoConfig::time_budget`] turns the solver stack
//! into a deadline-aware degradation ladder (recorded in
//! [`PestoOutcome::degradation`]).
//!
//! The simulator can also pipeline *K* consecutive training steps
//! (double-buffered memory, weight updates as per-step barriers) to
//! measure sustained throughput instead of one-step latency:
//! [`evaluate_plan_pipelined`] reports the fill / steady-state / drain
//! breakdown, [`PestoConfig::pipeline_steps`] records it on
//! [`PestoOutcome::pipeline`], and [`RobustnessConfig::steps`] makes the
//! fault sweep rank plans by steady-state step time.
//!
//! ## Quickstart
//!
//! ```
//! use pesto::{Pesto, PestoConfig};
//! use pesto::graph::Cluster;
//! use pesto::models::ModelSpec;
//!
//! # fn main() -> Result<(), pesto::PestoError> {
//! // A (reduced-size) NASNet training DAG and the paper's 2-GPU testbed.
//! let graph = ModelSpec::nasnet(3, 16).generate(32, 42);
//! let cluster = Cluster::two_gpus();
//!
//! let pesto = Pesto::new(PestoConfig::fast());
//! let outcome = pesto.place(&graph, &cluster)?;
//! println!(
//!     "per-step time {:.1} ms after coarsening {} -> {} ops",
//!     outcome.makespan_us / 1000.0,
//!     graph.op_count(),
//!     outcome.coarse_op_count,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod eval;
mod pipeline;
mod robust;
mod storage;

pub use checkpoint::{
    generation_path, graph_fingerprint, latest_generation, latest_valid_generation,
    latest_valid_generation_with, load_checkpoint, load_checkpoint_with, prune, prune_with,
    quarantine_file, quarantine_file_with, save_checkpoint, save_checkpoint_with, CheckpointConfig,
    CheckpointError, CheckpointIncumbent, GenerationScan, PruneReport, SearchCheckpoint,
    CHECKPOINT_SCHEMA_VERSION,
};
pub use eval::{
    evaluate_plan, evaluate_plan_avg, evaluate_plan_pipelined, PipelinedOutcome, StepOutcome,
};
pub use pesto_obs::CancelToken;
pub use pipeline::{DegradationReason, Pesto, PestoConfig, PestoError, PestoOutcome, StageTiming};
pub use robust::{
    evaluate_robustness, repair_after_outage, replace_after_drift, replace_after_drift_from_report,
    replace_after_drift_observed, DriftReplaceOutcome, RepairOutcome, RobustnessConfig,
    RobustnessReport, ROBUSTNESS_SCHEMA_VERSION,
};
pub use storage::{ChaosPlan, ChaosStorage, FsStorage, Storage};

/// Re-export: operation DAGs, clusters, and plans.
pub mod graph {
    pub use pesto_graph::*;
}
/// Re-export: profiling and communication cost models.
pub mod cost {
    pub use pesto_cost::*;
}
/// Re-export: the LP solver.
pub mod lp {
    pub use pesto_lp::*;
}
/// Re-export: the branch-and-bound MILP solver.
pub mod milp {
    pub use pesto_milp::*;
}
/// Re-export: the discrete-event training-step simulator.
pub mod sim {
    pub use pesto_sim::*;
}
/// Re-export: cycle-free graph coarsening.
pub mod coarsen {
    pub use pesto_coarsen::*;
}
/// Re-export: the Pesto ILP, hybrid solver, and placer.
pub mod ilp {
    pub use pesto_ilp::*;
}
/// Re-export: Expert, Baechi, and other baselines.
pub mod baselines {
    pub use pesto_baselines::*;
}
/// Re-export: hierarchical sharded placement for paper-scale graphs.
pub mod shard {
    pub use pesto_shard::*;
}
/// Re-export: synthetic DNN model generators.
pub mod models {
    pub use pesto_models::*;
}
/// Re-export: spans, metrics, and solver-progress telemetry.
pub mod obs {
    pub use pesto_obs::*;
}
