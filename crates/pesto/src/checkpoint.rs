//! Crash-safe placement jobs: a versioned, atomically written snapshot of
//! the hybrid search and MILP incumbents that a killed run can resume
//! from.
//!
//! A long placement job loses everything when the process dies: the
//! annealer's incumbent, its RNG position, the MILP's best bound. The
//! [`SearchCheckpoint`] captures all of it — plus the *expanded*
//! fine-grained incumbent plan, so even a reader with no solver at hand
//! gets a valid placement out of a crashed job — and
//! [`save_checkpoint`] persists it with the classic write-to-temp +
//! rename protocol, so a crash mid-write can never destroy the previous
//! good checkpoint.
//!
//! Resuming is only sound against the *same* job: the checkpoint records
//! a [`graph_fingerprint`] and the config seed, and
//! [`SearchCheckpoint::verify`] rejects a mismatch with a typed
//! [`CheckpointError::Mismatch`] instead of silently producing garbage.
//! The format carries a `major.minor` [`CHECKPOINT_SCHEMA_VERSION`];
//! [`load_checkpoint`] rejects an unknown major cleanly
//! ([`CheckpointError::UnsupportedVersion`]) before attempting a full
//! parse.
//!
//! Atomic rename protects against a *crash*, but not against storage that
//! lies: a torn writeback or a flipped bit leaves a file that renames
//! cleanly and parses as garbage (or worse, parses fine). Every
//! checkpoint is therefore wrapped in a checksummed envelope — a one-line
//! header carrying the payload length and a CRC-64 — and
//! [`load_checkpoint`] fails corruption with the typed, non-retryable
//! [`CheckpointError::Corrupt`]. Pre-envelope files (no header) still
//! load for backward compatibility. On top of that,
//! [`latest_valid_generation`] walks the generation set newest-first,
//! moving corrupt generations into a `quarantine/` subdirectory (evidence
//! for postmortems, never deleted) until it finds one that loads and
//! validates — so one bad write costs a few hundred iterations of
//! progress, not the whole job. All file I/O here is routed through the
//! [`Storage`] trait so the chaos test-suite can inject exactly those
//! faults.

use crate::storage::{FsStorage, Storage};
use pesto_graph::{FrozenGraph, Plan};
use pesto_ilp::HybridSearchState;
use pesto_milp::MilpCheckpoint;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::error::Error;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

/// Crash-safety knobs for a placement job
/// ([`PestoConfig::checkpoint`][crate::PestoConfig::checkpoint]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Where the checkpoint lives. Written atomically (temp + rename) on
    /// every snapshot, so the file is always a complete checkpoint.
    pub path: PathBuf,
    /// Snapshot cadence, in hybrid-search iterations. `0` disables
    /// periodic snapshots; the final checkpoint is still written when the
    /// run completes, and deadline truncation always snapshots.
    pub every_iters: usize,
    /// Resume from `path` if it exists. A missing file starts fresh (so
    /// the same invocation works for the first run and every restart);
    /// an existing file that fails to load or belongs to a different job
    /// is a typed error, never a silent cold start.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 200 search iterations, no resume.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_iters: 200,
            resume: false,
        }
    }

    /// Like [`CheckpointConfig::new`] but resumes from `path` when it
    /// already holds a checkpoint.
    pub fn resume(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            resume: true,
            ..CheckpointConfig::new(path)
        }
    }
}

/// Schema version written into every checkpoint, as `major.minor`. Bump
/// the minor for additive changes (old readers ignore new fields); bump
/// the major for breaking ones (old readers must refuse the file).
pub const CHECKPOINT_SCHEMA_VERSION: &str = "1.0";

/// The best plan known at checkpoint time, already expanded to the fine
/// graph — directly usable without re-running any solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointIncumbent {
    /// Fine-grained placement-only plan of the search incumbent.
    pub plan: Plan,
    /// Honestly simulated per-step time, µs. `None` for mid-search
    /// snapshots (the pipeline only simulates at the end); populated in
    /// the final checkpoint a completed run writes.
    pub makespan_us: Option<f64>,
}

/// A resumable snapshot of a placement job's search state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Format version, `major.minor` (see [`CHECKPOINT_SCHEMA_VERSION`]).
    pub schema_version: String,
    /// Fingerprint of the input graph ([`graph_fingerprint`]); resume
    /// refuses a checkpoint taken against a different graph.
    pub graph_fingerprint: u64,
    /// The pipeline seed the job ran with; profiling noise and the search
    /// stream both derive from it, so resume requires an exact match.
    pub seed: u64,
    /// Per-restart annealer state (coarse-graph placements, RNG
    /// positions, temperatures). `None` when the job never reached the
    /// hybrid search.
    pub hybrid: Option<HybridSearchState>,
    /// MILP incumbent + bound for warm-starting the exact path. `None`
    /// when the exact ILP never ran.
    pub milp: Option<MilpCheckpoint>,
    /// Best fine-grained plan known so far, if any restart has one.
    pub incumbent: Option<CheckpointIncumbent>,
}

impl SearchCheckpoint {
    /// An empty checkpoint for the job identified by `fingerprint` and
    /// `seed`.
    pub fn new(graph_fingerprint: u64, seed: u64) -> Self {
        SearchCheckpoint {
            schema_version: CHECKPOINT_SCHEMA_VERSION.to_string(),
            graph_fingerprint,
            seed,
            hybrid: None,
            milp: None,
            incumbent: None,
        }
    }

    /// Checks that this checkpoint belongs to the job defined by
    /// `fingerprint` and `seed`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the field that differs.
    pub fn verify(&self, graph_fingerprint: u64, seed: u64) -> Result<(), CheckpointError> {
        if self.graph_fingerprint != graph_fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "graph fingerprint {:#018x} != expected {:#018x}; \
                 this checkpoint was taken against a different graph",
                self.graph_fingerprint, graph_fingerprint
            )));
        }
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {} != configured seed {}; \
                 profiling and search streams would not line up",
                self.seed, seed
            )));
        }
        Ok(())
    }
}

/// Errors from checkpoint I/O and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The file is not a parseable checkpoint.
    Parse(String),
    /// The file's schema major version is not one this build understands.
    UnsupportedVersion {
        /// The `schema_version` string found in the file.
        found: String,
    },
    /// The checkpoint is valid but belongs to a different job (graph
    /// fingerprint or seed differs).
    Mismatch(String),
    /// The file's checksummed envelope does not match its payload: the
    /// bytes on disk were torn or corrupted after the write "succeeded".
    /// Non-retryable — retrying re-reads the same bad bytes; the recovery
    /// path is [`latest_valid_generation`] falling back to an older
    /// generation (quarantining this one).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse error: {msg}"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "checkpoint schema version {found:?} is not supported by this build \
                 (expected major {major})",
                major = schema_major(CHECKPOINT_SCHEMA_VERSION).unwrap_or(1),
            ),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// A deterministic structural fingerprint of a graph: op names, kinds,
/// compute times, memory footprints, colocation groups, and the full
/// weighted edge list. Two graphs that fingerprint equal produce the same
/// profile, coarsening, and search under the same seed, which is exactly
/// the property resume needs. (Std's `DefaultHasher` is SipHash with
/// fixed keys — stable across processes, which is what matters for a
/// checkpoint that outlives its writer.)
pub fn graph_fingerprint(graph: &FrozenGraph) -> u64 {
    let mut h = DefaultHasher::new();
    graph.op_count().hash(&mut h);
    for id in graph.op_ids() {
        let op = graph.op(id);
        op.name().hash(&mut h);
        let kind = match op.kind() {
            pesto_graph::DeviceKind::Cpu => 0u8,
            pesto_graph::DeviceKind::Gpu => 1u8,
            pesto_graph::DeviceKind::Kernel => 2u8,
        };
        kind.hash(&mut h);
        op.compute_us().to_bits().hash(&mut h);
        op.memory_bytes().hash(&mut h);
        op.colocation_group().hash(&mut h);
        op.is_weight_update().hash(&mut h);
    }
    for &(src, dst, bytes) in graph.edges() {
        src.index().hash(&mut h);
        dst.index().hash(&mut h);
        bytes.hash(&mut h);
    }
    h.finish()
}

/// Parses the major component of a `major.minor` schema version.
fn schema_major(version: &str) -> Option<u64> {
    version.split('.').next()?.parse().ok()
}

/// Rejects schema versions whose major this build does not understand.
fn check_schema_version(found: &str) -> Result<(), CheckpointError> {
    let ours = schema_major(CHECKPOINT_SCHEMA_VERSION).expect("our own version parses");
    match schema_major(found) {
        Some(major) if major == ours => Ok(()),
        _ => Err(CheckpointError::UnsupportedVersion {
            found: found.to_string(),
        }),
    }
}

/// Extracts the `schema_version` string field from raw checkpoint JSON
/// without a full typed parse, so version rejection happens *before* we
/// try to deserialize a layout this build may not understand. Handles the
/// subset JSON serialization actually emits (the field value is a plain
/// string with no escapes).
fn extract_schema_version(json: &str) -> Option<String> {
    let key = "\"schema_version\"";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// CRC-64/XZ lookup table (reflected ECMA-182 polynomial), built at
/// compile time.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `bytes` (reflected ECMA-182, init and xorout all-ones).
fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Magic prefix of a checksummed checkpoint file. Files that do not start
/// with this are treated as legacy bare-payload checkpoints.
const ENVELOPE_MAGIC: &str = "{\"pesto_envelope\":1,";

/// Wraps `payload` in the checksummed envelope: a single header line
/// `{"pesto_envelope":1,"len":<N>,"crc64":"<16 hex>"}` followed by the
/// payload verbatim.
fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{ENVELOPE_MAGIC}\"len\":{},\"crc64\":\"{:016x}\"}}\n",
        payload.len(),
        crc64(payload),
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Extracts an unsigned decimal header field (`"len":123`).
fn header_u64(header: &str, key: &str) -> Option<u64> {
    let at = header.find(key)? + key.len();
    let rest = header[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a quoted hex header field (`"crc64":"00ff..."`).
fn header_hex(header: &str, key: &str) -> Option<u64> {
    let at = header.find(key)? + key.len();
    let rest = header[at..]
        .trim_start()
        .strip_prefix(':')?
        .trim_start()
        .strip_prefix('"')?;
    let end = rest.find('"')?;
    u64::from_str_radix(&rest[..end], 16).ok()
}

/// Validates the envelope and returns the payload slice. A file without
/// the envelope magic is a legacy bare-payload checkpoint and is returned
/// whole (its integrity is then only as good as its JSON parse — exactly
/// the pre-envelope behavior).
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] when the header is unparseable, the
/// payload length differs (torn write), or the CRC does not match
/// (bit rot / corruption).
fn decode_envelope<'a>(raw: &'a [u8], path: &Path) -> Result<&'a [u8], CheckpointError> {
    if !raw.starts_with(ENVELOPE_MAGIC.as_bytes()) {
        return Ok(raw);
    }
    let newline = raw.iter().position(|&b| b == b'\n').ok_or_else(|| {
        CheckpointError::Corrupt(format!("{}: envelope header has no end", path.display()))
    })?;
    let header = std::str::from_utf8(&raw[..newline]).map_err(|_| {
        CheckpointError::Corrupt(format!("{}: envelope header not UTF-8", path.display()))
    })?;
    let (len, crc) = match (
        header_u64(header, "\"len\""),
        header_hex(header, "\"crc64\""),
    ) {
        (Some(len), Some(crc)) => (len, crc),
        _ => {
            return Err(CheckpointError::Corrupt(format!(
                "{}: envelope header missing len/crc64",
                path.display()
            )))
        }
    };
    let payload = &raw[newline + 1..];
    if payload.len() as u64 != len {
        return Err(CheckpointError::Corrupt(format!(
            "{}: payload is {} bytes, envelope says {len} (torn write)",
            path.display(),
            payload.len(),
        )));
    }
    let actual = crc64(payload);
    if actual != crc {
        return Err(CheckpointError::Corrupt(format!(
            "{}: payload crc64 {actual:016x} != envelope {crc:016x}",
            path.display(),
        )));
    }
    Ok(payload)
}

/// Atomically persists `checkpoint` at `path` via [`FsStorage`]; see
/// [`save_checkpoint_with`].
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure;
/// [`CheckpointError::Parse`] if serialization itself fails.
pub fn save_checkpoint(path: &Path, checkpoint: &SearchCheckpoint) -> Result<(), CheckpointError> {
    save_checkpoint_with(&FsStorage, path, checkpoint)
}

/// Atomically persists `checkpoint` at `path` through `storage`: the
/// payload JSON is wrapped in the checksummed envelope and handed to
/// [`Storage::write_atomic`] (sibling temp file + rename), so a crash at
/// any point leaves either the old checkpoint or the new one — never a
/// torn *visible* file, and storage-level tearing of the contents is
/// caught at load time by the checksum.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any storage failure;
/// [`CheckpointError::Parse`] if serialization itself fails.
pub fn save_checkpoint_with(
    storage: &dyn Storage,
    path: &Path,
    checkpoint: &SearchCheckpoint,
) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(checkpoint)
        .map_err(|e| CheckpointError::Parse(format!("serialize: {e}")))?;
    let bytes = encode_envelope(json.as_bytes());
    storage
        .write_atomic(path, &bytes)
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", path.display())))
}

/// File path for generation `generation` of job `stem` under `dir`:
/// `<dir>/<stem>.gen-<N>.json`. Writing successive generations to
/// distinct files (each atomically, via [`save_checkpoint`]) means the
/// previous generation survives until the new one is durably in place;
/// [`prune`] then garbage-collects the superseded ones.
pub fn generation_path(dir: &Path, stem: &str, generation: u64) -> PathBuf {
    dir.join(format!("{stem}.gen-{generation}.json"))
}

/// Parses a generational checkpoint file name back into `(stem, N)`.
/// Returns `None` for anything that is not `<stem>.gen-<N>.json`.
fn parse_generation(name: &str) -> Option<(&str, u64)> {
    let base = name.strip_suffix(".json")?;
    let at = base.rfind(".gen-")?;
    let generation: u64 = base[at + ".gen-".len()..].parse().ok()?;
    Some((&base[..at], generation))
}

/// Finds the newest checkpoint generation of `stem` under `dir`.
/// A missing directory (or no matching files) is `Ok(None)`: restart
/// scans treat "nothing to resume" as a fresh start, not an error.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the directory exists but cannot be listed.
pub fn latest_generation(
    dir: &Path,
    stem: &str,
) -> Result<Option<(u64, PathBuf)>, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(format!("list {}: {e}", dir.display()))),
    };
    let mut newest: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::Io(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((s, generation)) = parse_generation(name) {
            if s == stem && newest.as_ref().is_none_or(|(g, _)| generation > *g) {
                newest = Some((generation, path));
            }
        }
    }
    Ok(newest)
}

/// What [`prune`] deleted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Superseded generation files removed.
    pub removed_generations: usize,
    /// Orphaned `*.tmp` files (from a crash between write and rename)
    /// swept.
    pub removed_tmp: usize,
}

/// Rotation/GC for a checkpoint directory: keeps the newest `keep_n`
/// generations of every job stem (at least one is always kept, even with
/// `keep_n == 0` — pruning must never delete a job's only checkpoint)
/// and sweeps orphaned `*.tmp` files left by a crash between the temp
/// write and the rename.
///
/// A missing directory is a no-op `Ok` — calling this unconditionally on
/// daemon startup is safe before any checkpoint was ever written. The
/// caller must ensure no write is in flight in `dir` while pruning (the
/// `pesto-serve` daemon prunes per-job directories from the job's own
/// worker, and globally only at startup, before workers exist), otherwise
/// the sweep could race a live temp file.
///
/// # Errors
///
/// [`CheckpointError::Io`] if listing the directory or deleting a file
/// fails; deletions already performed are not rolled back.
pub fn prune(dir: &Path, keep_n: usize) -> Result<PruneReport, CheckpointError> {
    prune_with(&FsStorage, dir, keep_n)
}

/// [`prune`] with removals routed through `storage` (fault injection in
/// tests). Deletions run oldest-generation-first per stem, so a crash —
/// or an injected failure — at any point during the sweep leaves the
/// newest generations intact: there is no window where a job has zero
/// loadable checkpoints on disk.
///
/// # Errors
///
/// As [`prune`].
pub fn prune_with(
    storage: &dyn Storage,
    dir: &Path,
    keep_n: usize,
) -> Result<PruneReport, CheckpointError> {
    let keep_n = keep_n.max(1);
    let mut report = PruneReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(CheckpointError::Io(format!("list {}: {e}", dir.display()))),
    };
    let mut generations: std::collections::BTreeMap<String, Vec<(u64, PathBuf)>> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::Io(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            storage
                .remove_file(&path)
                .map_err(|e| CheckpointError::Io(format!("remove {}: {e}", path.display())))?;
            report.removed_tmp += 1;
            continue;
        }
        if let Some((stem, generation)) = parse_generation(name) {
            generations
                .entry(stem.to_string())
                .or_default()
                .push((generation, path));
        }
    }
    for (_, mut gens) in generations {
        gens.sort_by_key(|(g, _)| *g);
        let cut = gens.len().saturating_sub(keep_n);
        for (_, path) in gens.drain(..cut) {
            storage
                .remove_file(&path)
                .map_err(|e| CheckpointError::Io(format!("remove {}: {e}", path.display())))?;
            report.removed_generations += 1;
        }
    }
    Ok(report)
}

/// Loads and validates a checkpoint from `path` via [`FsStorage`]; see
/// [`load_checkpoint_with`].
///
/// # Errors
///
/// As [`load_checkpoint_with`].
pub fn load_checkpoint(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
    load_checkpoint_with(&FsStorage, path)
}

/// Loads and validates a checkpoint from `path` through `storage`.
///
/// The checksummed envelope is verified first (legacy bare-payload files
/// skip this), then the schema major version is checked *before* the full
/// parse, so a future-format file fails with
/// [`CheckpointError::UnsupportedVersion`] rather than an opaque
/// deserialization error.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::Corrupt`] if the envelope checksum or length does
/// not match the payload, [`CheckpointError::UnsupportedVersion`] for
/// unknown majors, [`CheckpointError::Parse`] for anything that is not a
/// checkpoint.
pub fn load_checkpoint_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<SearchCheckpoint, CheckpointError> {
    let bytes = storage
        .read(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    let payload = decode_envelope(&bytes, path)?;
    let raw = std::str::from_utf8(payload)
        .map_err(|_| CheckpointError::Parse(format!("{}: payload not UTF-8", path.display())))?;
    match extract_schema_version(raw) {
        Some(version) => check_schema_version(&version)?,
        None => {
            return Err(CheckpointError::Parse(format!(
                "{}: no schema_version field",
                path.display()
            )))
        }
    }
    let checkpoint: SearchCheckpoint = serde_json::from_str(raw)
        .map_err(|e| CheckpointError::Parse(format!("{}: {e}", path.display())))?;
    Ok(checkpoint)
}

/// Moves `path` into the `quarantine/` subdirectory next to it via
/// [`FsStorage`]; see [`quarantine_file_with`].
///
/// # Errors
///
/// As [`quarantine_file_with`].
pub fn quarantine_file(path: &Path) -> Result<PathBuf, CheckpointError> {
    quarantine_file_with(&FsStorage, path)
}

/// Moves a corrupt file into a `quarantine/` subdirectory beside it
/// (creating the directory if needed) and returns the new path. Corrupt
/// checkpoints are preserved, not deleted: the quarantined bytes are the
/// evidence a postmortem needs to tell torn writes from bit rot from
/// software bugs. `quarantine/` is invisible to [`latest_generation`] and
/// [`prune`], which only consider regular files directly under the
/// checkpoint directory.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the directory cannot be created or the file
/// cannot be moved.
pub fn quarantine_file_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<PathBuf, CheckpointError> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let qdir = parent.join("quarantine");
    storage
        .create_dir_all(&qdir)
        .map_err(|e| CheckpointError::Io(format!("create {}: {e}", qdir.display())))?;
    let name = path.file_name().ok_or_else(|| {
        CheckpointError::Io(format!("{}: no file name to quarantine", path.display()))
    })?;
    let dest = qdir.join(name);
    storage.rename(path, &dest).map_err(|e| {
        CheckpointError::Io(format!(
            "quarantine {} -> {}: {e}",
            path.display(),
            dest.display()
        ))
    })?;
    Ok(dest)
}

/// Outcome of a [`latest_valid_generation`] scan.
#[derive(Debug, Clone, Default)]
pub struct GenerationScan {
    /// The newest generation that loaded and validated, if any:
    /// `(generation, path, checkpoint)`.
    pub valid: Option<(u64, PathBuf, SearchCheckpoint)>,
    /// Generations that failed validation (corrupt, unparseable, wrong
    /// schema, or wrong job) and were moved into `quarantine/`. Newest
    /// first.
    pub quarantined: Vec<PathBuf>,
    /// Generations skipped because of a (possibly transient) read error.
    /// Not quarantined — the bytes on disk may be fine.
    pub skipped_io: Vec<PathBuf>,
}

/// Finds the newest checkpoint generation of `stem` under `dir` that
/// loads and passes `validate`, via [`FsStorage`]; see
/// [`latest_valid_generation_with`].
///
/// # Errors
///
/// As [`latest_valid_generation_with`].
pub fn latest_valid_generation(
    dir: &Path,
    stem: &str,
    validate: &dyn Fn(u64, &SearchCheckpoint) -> Result<(), CheckpointError>,
) -> Result<GenerationScan, CheckpointError> {
    latest_valid_generation_with(&FsStorage, dir, stem, validate)
}

/// The corruption-tolerant replacement for [`latest_generation`]: walks
/// the generations of `stem` under `dir` newest-first until one loads and
/// passes `validate(generation, &checkpoint)` (typically
/// [`SearchCheckpoint::verify`] against the expected fingerprint and the
/// generation's seed).
///
/// Generations that fail — corrupt envelope, unparseable payload,
/// unsupported schema, or `validate` rejection — are moved into
/// `quarantine/` ([`quarantine_file_with`]) and the walk continues to the
/// next-older generation. Generations whose *read* fails are skipped but
/// left in place (the error may be transient; destroying the newest
/// checkpoint over a flaky read would be worse than resuming older). A
/// missing directory, or no generation surviving the walk, yields
/// `valid: None` — a fresh start, exactly like [`latest_generation`]
/// returning `None`.
///
/// # Errors
///
/// [`CheckpointError::Io`] only if the directory exists but cannot be
/// listed; per-generation failures are reported in the scan, not as
/// errors.
pub fn latest_valid_generation_with(
    storage: &dyn Storage,
    dir: &Path,
    stem: &str,
    validate: &dyn Fn(u64, &SearchCheckpoint) -> Result<(), CheckpointError>,
) -> Result<GenerationScan, CheckpointError> {
    let mut scan = GenerationScan::default();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(CheckpointError::Io(format!("list {}: {e}", dir.display()))),
    };
    let mut gens: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::Io(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((s, generation)) = parse_generation(name) {
            if s == stem {
                gens.push((generation, path));
            }
        }
    }
    gens.sort_by_key(|(g, _)| std::cmp::Reverse(*g));
    for (generation, path) in gens {
        match load_checkpoint_with(storage, &path).and_then(|ckpt| {
            validate(generation, &ckpt)?;
            Ok(ckpt)
        }) {
            Ok(ckpt) => {
                scan.valid = Some((generation, path, ckpt));
                break;
            }
            Err(CheckpointError::Io(_)) => scan.skipped_io.push(path),
            Err(_) => match quarantine_file_with(storage, &path) {
                Ok(dest) => scan.quarantined.push(dest),
                // Quarantine itself failed (disk trouble); leave the file
                // and record it as skipped rather than aborting the walk.
                Err(_) => scan.skipped_io.push(path),
            },
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_models::ModelSpec;
    use std::path::PathBuf;

    /// The offline stub `serde_json` serializes everything to `""`; real
    /// `serde_json` round-trips. Tests that need real serialization guard
    /// on this.
    fn serde_json_available() -> bool {
        serde_json::to_string(&1u8)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pesto-checkpoint-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn prune_keeps_newest_generations_and_sweeps_tmp() {
        let dir = tmp_path("prune-dir");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for g in 0..5u64 {
            fs::write(generation_path(&dir, "job-a", g), b"{}").unwrap();
        }
        for g in 3..5u64 {
            fs::write(generation_path(&dir, "job-b", g), b"{}").unwrap();
        }
        // Orphaned atomic-write leftovers and unrelated files.
        fs::write(dir.join("job-a.gen-9.json.tmp"), b"torn").unwrap();
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        let report = prune(&dir, 2).unwrap();
        assert_eq!(report.removed_generations, 3, "job-a generations 0..=2");
        assert_eq!(report.removed_tmp, 1);
        assert!(generation_path(&dir, "job-a", 3).exists());
        assert!(generation_path(&dir, "job-a", 4).exists());
        assert!(!generation_path(&dir, "job-a", 0).exists());
        assert!(generation_path(&dir, "job-b", 3).exists());
        assert!(generation_path(&dir, "job-b", 4).exists());
        assert!(!dir.join("job-a.gen-9.json.tmp").exists());
        assert!(dir.join("notes.txt").exists(), "non-checkpoint files stay");
        // Idempotent: a second prune finds nothing left to do.
        assert_eq!(prune(&dir, 2).unwrap(), PruneReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_missing_dir_is_a_noop() {
        let dir = tmp_path("prune-missing");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(prune(&dir, 3).unwrap(), PruneReport::default());
    }

    #[test]
    fn prune_never_deletes_the_only_checkpoint() {
        let dir = tmp_path("prune-keep-one");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(generation_path(&dir, "solo", 7), b"{}").unwrap();
        // keep_n == 0 is clamped: a job's only checkpoint must survive.
        assert_eq!(prune(&dir, 0).unwrap(), PruneReport::default());
        assert!(generation_path(&dir, "solo", 7).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_generation_finds_the_newest_of_the_right_stem() {
        let dir = tmp_path("latest-gen");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(latest_generation(&dir, "job").unwrap(), None);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_generation(&dir, "job").unwrap(), None);
        for g in [2u64, 10, 5] {
            fs::write(generation_path(&dir, "job", g), b"{}").unwrap();
        }
        fs::write(generation_path(&dir, "other", 99), b"{}").unwrap();
        let (generation, path) = latest_generation(&dir, "job").unwrap().unwrap();
        assert_eq!(generation, 10);
        assert_eq!(path, generation_path(&dir, "job", 10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_files_roundtrip_through_the_atomic_writer() {
        if !serde_json_available() {
            return;
        }
        let dir = tmp_path("gen-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ckpt = SearchCheckpoint::new(0xfeed, 3);
        save_checkpoint(&generation_path(&dir, "job", 0), &ckpt).unwrap();
        let mut newer = SearchCheckpoint::new(0xfeed, 3);
        newer.incumbent = None;
        save_checkpoint(&generation_path(&dir, "job", 1), &newer).unwrap();
        let (generation, path) = latest_generation(&dir, "job").unwrap().unwrap();
        assert_eq!(generation, 1);
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.verify(0xfeed, 3), Ok(()));
        // Rotation leaves exactly the newest file.
        prune(&dir, 1).unwrap();
        assert!(!generation_path(&dir, "job", 0).exists());
        assert!(generation_path(&dir, "job", 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let a = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let b = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        let wider = ModelSpec::transformer(1, 2, 128).generate(4, 1);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&wider));
        let deeper = ModelSpec::transformer(2, 2, 64).generate(4, 1);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&deeper));
        // A single op time flips the fingerprint too.
        let mut thawed = a.clone().thaw();
        let id = pesto_graph::OpId::from_index(0);
        let t = thawed.op(id).compute_us();
        thawed.op_mut(id).set_compute_us(t + 1.0);
        let perturbed = thawed.freeze().unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&perturbed));
    }

    #[test]
    fn verify_rejects_the_wrong_job() {
        let ckpt = SearchCheckpoint::new(0xabcd, 7);
        assert_eq!(ckpt.verify(0xabcd, 7), Ok(()));
        assert!(matches!(
            ckpt.verify(0xefef, 7),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            ckpt.verify(0xabcd, 8),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn schema_version_gate_accepts_minors_and_rejects_majors() {
        assert!(check_schema_version("1.0").is_ok());
        assert!(check_schema_version("1.7").is_ok());
        for bad in ["2.0", "0.9", "hello", ""] {
            assert_eq!(
                check_schema_version(bad),
                Err(CheckpointError::UnsupportedVersion {
                    found: bad.to_string()
                }),
                "version {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn version_is_extracted_without_a_full_parse() {
        let json = r#"{"schema_version": "3.1", "graph_fingerprint": 1}"#;
        assert_eq!(extract_schema_version(json).as_deref(), Some("3.1"));
        assert_eq!(extract_schema_version("{}"), None);
    }

    #[test]
    fn save_load_round_trips_and_rejects_future_majors() {
        if !serde_json_available() {
            return; // offline stub serde_json cannot round-trip
        }
        let path = tmp_path("roundtrip.json");
        let ckpt = SearchCheckpoint::new(0x1234_5678, 42);
        save_checkpoint(&path, &ckpt).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back, ckpt);

        // A future-major file is refused cleanly, before parsing. Rewrite
        // the payload *and* its envelope — this is a well-formed future
        // file, not a corrupt one.
        let raw = std::fs::read(&path).unwrap();
        let payload = decode_envelope(&raw, &path).unwrap();
        let future = std::str::from_utf8(payload)
            .unwrap()
            .replace("\"1.0\"", "\"2.0\"");
        std::fs::write(&path, encode_envelope(future.as_bytes())).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::UnsupportedVersion { found }) if found == "2.0"
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc64_matches_the_reference_vector() {
        // CRC-64/XZ check value from the catalogue of parametrised CRCs.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn envelope_rejects_torn_and_bit_flipped_payloads() {
        let payload = br#"{"schema_version":"1.0","graph_fingerprint":1}"#;
        let bytes = encode_envelope(payload);
        let path = Path::new("test.json");
        assert_eq!(decode_envelope(&bytes, path).unwrap(), payload.as_slice());

        // Torn: the payload lost its tail but the header survived.
        let torn = &bytes[..bytes.len() - 5];
        assert!(matches!(
            decode_envelope(torn, path),
            Err(CheckpointError::Corrupt(msg)) if msg.contains("torn")
        ));

        // Bit flip in the payload: length matches, CRC does not.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(matches!(
            decode_envelope(&flipped, path),
            Err(CheckpointError::Corrupt(msg)) if msg.contains("crc64")
        ));

        // A file without the magic is a legacy payload, returned whole.
        assert_eq!(decode_envelope(payload, path).unwrap(), payload.as_slice());
    }

    #[test]
    fn legacy_unchecksummed_checkpoints_still_load() {
        if !serde_json_available() {
            return;
        }
        let path = tmp_path("legacy.json");
        let ckpt = SearchCheckpoint::new(0xbeef, 9);
        // Pre-envelope writers stored the bare payload JSON.
        let payload = serde_json::to_string(&ckpt).unwrap();
        fs::write(&path, payload.as_bytes()).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), ckpt);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupting_the_saved_file_is_detected() {
        if !serde_json_available() {
            return;
        }
        let path = tmp_path("detect-corrupt.json");
        let ckpt = SearchCheckpoint::new(0xc0de, 1);
        save_checkpoint(&path, &ckpt).unwrap();
        // Saved files carry the envelope and round-trip.
        assert_eq!(load_checkpoint(&path).unwrap(), ckpt);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation (a torn writeback) is detected too.
        save_checkpoint(&path, &ckpt).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn latest_valid_generation_walks_past_corruption_and_quarantines() {
        if !serde_json_available() {
            return;
        }
        let dir = tmp_path("valid-gen-walk");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let accept_job = |_: u64, ckpt: &SearchCheckpoint| -> Result<(), CheckpointError> {
            ckpt.verify(0xfeed, 5)
        };

        // Missing dir and empty dir are both a clean fresh start.
        let empty =
            latest_valid_generation(&tmp_path("valid-gen-none"), "job", &accept_job).unwrap();
        assert!(empty.valid.is_none() && empty.quarantined.is_empty());

        let ckpt = SearchCheckpoint::new(0xfeed, 5);
        for g in 0..3u64 {
            save_checkpoint(&generation_path(&dir, "job", g), &ckpt).unwrap();
        }
        // Corrupt the newest generation and tear the one below it.
        let g2 = generation_path(&dir, "job", 2);
        let mut bytes = fs::read(&g2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&g2, &bytes).unwrap();
        let g1 = generation_path(&dir, "job", 1);
        let bytes = fs::read(&g1).unwrap();
        fs::write(&g1, &bytes[..bytes.len() / 2]).unwrap();

        let scan = latest_valid_generation(&dir, "job", &accept_job).unwrap();
        let (generation, path, loaded) = scan.valid.expect("gen-0 survives");
        assert_eq!(generation, 0);
        assert_eq!(path, generation_path(&dir, "job", 0));
        assert_eq!(loaded, ckpt);
        // Both bad generations moved into quarantine/, newest first.
        assert_eq!(
            scan.quarantined,
            vec![
                dir.join("quarantine").join("job.gen-2.json"),
                dir.join("quarantine").join("job.gen-1.json"),
            ]
        );
        assert!(!g2.exists() && !g1.exists());
        assert!(scan.skipped_io.is_empty());

        // The wrong job is also walked past (and quarantined): a stray
        // checkpoint must never be resumed into a different job.
        let mut wrong = SearchCheckpoint::new(0xdead, 5);
        wrong.incumbent = None;
        save_checkpoint(&generation_path(&dir, "job", 3), &wrong).unwrap();
        let scan = latest_valid_generation(&dir, "job", &accept_job).unwrap();
        assert_eq!(scan.valid.as_ref().map(|(g, _, _)| *g), Some(0));
        assert_eq!(scan.quarantined.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A storage that fails every `remove_file` after the first `n`,
    /// simulating a crash (SIGKILL) landing mid-prune.
    #[derive(Debug)]
    struct StopAfterN {
        budget: std::sync::Mutex<usize>,
    }

    impl Storage for StopAfterN {
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            FsStorage.read(path)
        }
        fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            FsStorage.write_atomic(path, bytes)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            let mut budget = self.budget.lock().unwrap();
            if *budget == 0 {
                return Err(std::io::Error::other("killed mid-prune"));
            }
            *budget -= 1;
            FsStorage.remove_file(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            FsStorage.rename(from, to)
        }
        fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
            FsStorage.create_dir_all(path)
        }
    }

    #[test]
    fn prune_interrupted_at_any_point_leaves_a_loadable_checkpoint() {
        if !serde_json_available() {
            return;
        }
        let ckpt = SearchCheckpoint::new(0xfade, 11);
        let accept =
            |_: u64, c: &SearchCheckpoint| -> Result<(), CheckpointError> { c.verify(0xfade, 11) };
        // 6 generations, keep 2 => prune wants 4 removals. Kill it after
        // every possible number of completed removals (0..=4) and check
        // the survivors always include a loadable, *newest-possible*
        // checkpoint.
        for killed_after in 0..=4usize {
            let dir = tmp_path(&format!("prune-race-{killed_after}"));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            for g in 0..6u64 {
                save_checkpoint(&generation_path(&dir, "job", g), &ckpt).unwrap();
            }
            let storage = StopAfterN {
                budget: std::sync::Mutex::new(killed_after),
            };
            let result = prune_with(&storage, &dir, 2);
            if killed_after < 4 {
                assert!(result.is_err(), "prune should have been interrupted");
            } else {
                assert_eq!(result.unwrap().removed_generations, 4);
            }
            let scan = latest_valid_generation(&dir, "job", &accept).unwrap();
            let (generation, path, _) = scan.valid.expect("a checkpoint must survive");
            // Deletion is oldest-first, so the newest generation is
            // untouched no matter where the kill landed.
            assert_eq!(generation, 5);
            assert_eq!(load_checkpoint(&path).unwrap(), ckpt);
            assert!(scan.quarantined.is_empty());
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn quarantine_moves_the_file_beside_its_directory() {
        let dir = tmp_path("quarantine-move");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let victim = dir.join("job.gen-3.json");
        fs::write(&victim, b"corrupt bytes").unwrap();
        let dest = quarantine_file(&victim).unwrap();
        assert_eq!(dest, dir.join("quarantine").join("job.gen-3.json"));
        assert!(!victim.exists());
        assert_eq!(fs::read(&dest).unwrap(), b"corrupt bytes");
        // Quarantined files are invisible to the generation scan and to
        // prune's sweep.
        assert_eq!(latest_generation(&dir, "job").unwrap(), None);
        assert_eq!(prune(&dir, 1).unwrap(), PruneReport::default());
        assert!(dest.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_garbage_is_a_typed_error() {
        let path = tmp_path("garbage.json");
        std::fs::write(&path, "not a checkpoint").unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Parse(_))
        ));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Io(_))
        ));
    }
}
