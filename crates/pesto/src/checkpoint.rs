//! Crash-safe placement jobs: a versioned, atomically written snapshot of
//! the hybrid search and MILP incumbents that a killed run can resume
//! from.
//!
//! A long placement job loses everything when the process dies: the
//! annealer's incumbent, its RNG position, the MILP's best bound. The
//! [`SearchCheckpoint`] captures all of it — plus the *expanded*
//! fine-grained incumbent plan, so even a reader with no solver at hand
//! gets a valid placement out of a crashed job — and
//! [`save_checkpoint`] persists it with the classic write-to-temp +
//! rename protocol, so a crash mid-write can never destroy the previous
//! good checkpoint.
//!
//! Resuming is only sound against the *same* job: the checkpoint records
//! a [`graph_fingerprint`] and the config seed, and
//! [`SearchCheckpoint::verify`] rejects a mismatch with a typed
//! [`CheckpointError::Mismatch`] instead of silently producing garbage.
//! The format carries a `major.minor` [`CHECKPOINT_SCHEMA_VERSION`];
//! [`load_checkpoint`] rejects an unknown major cleanly
//! ([`CheckpointError::UnsupportedVersion`]) before attempting a full
//! parse.

use pesto_graph::{FrozenGraph, Plan};
use pesto_ilp::HybridSearchState;
use pesto_milp::MilpCheckpoint;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::error::Error;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

/// Crash-safety knobs for a placement job
/// ([`PestoConfig::checkpoint`][crate::PestoConfig::checkpoint]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Where the checkpoint lives. Written atomically (temp + rename) on
    /// every snapshot, so the file is always a complete checkpoint.
    pub path: PathBuf,
    /// Snapshot cadence, in hybrid-search iterations. `0` disables
    /// periodic snapshots; the final checkpoint is still written when the
    /// run completes, and deadline truncation always snapshots.
    pub every_iters: usize,
    /// Resume from `path` if it exists. A missing file starts fresh (so
    /// the same invocation works for the first run and every restart);
    /// an existing file that fails to load or belongs to a different job
    /// is a typed error, never a silent cold start.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 200 search iterations, no resume.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_iters: 200,
            resume: false,
        }
    }

    /// Like [`CheckpointConfig::new`] but resumes from `path` when it
    /// already holds a checkpoint.
    pub fn resume(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            resume: true,
            ..CheckpointConfig::new(path)
        }
    }
}

/// Schema version written into every checkpoint, as `major.minor`. Bump
/// the minor for additive changes (old readers ignore new fields); bump
/// the major for breaking ones (old readers must refuse the file).
pub const CHECKPOINT_SCHEMA_VERSION: &str = "1.0";

/// The best plan known at checkpoint time, already expanded to the fine
/// graph — directly usable without re-running any solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointIncumbent {
    /// Fine-grained placement-only plan of the search incumbent.
    pub plan: Plan,
    /// Honestly simulated per-step time, µs. `None` for mid-search
    /// snapshots (the pipeline only simulates at the end); populated in
    /// the final checkpoint a completed run writes.
    pub makespan_us: Option<f64>,
}

/// A resumable snapshot of a placement job's search state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Format version, `major.minor` (see [`CHECKPOINT_SCHEMA_VERSION`]).
    pub schema_version: String,
    /// Fingerprint of the input graph ([`graph_fingerprint`]); resume
    /// refuses a checkpoint taken against a different graph.
    pub graph_fingerprint: u64,
    /// The pipeline seed the job ran with; profiling noise and the search
    /// stream both derive from it, so resume requires an exact match.
    pub seed: u64,
    /// Per-restart annealer state (coarse-graph placements, RNG
    /// positions, temperatures). `None` when the job never reached the
    /// hybrid search.
    pub hybrid: Option<HybridSearchState>,
    /// MILP incumbent + bound for warm-starting the exact path. `None`
    /// when the exact ILP never ran.
    pub milp: Option<MilpCheckpoint>,
    /// Best fine-grained plan known so far, if any restart has one.
    pub incumbent: Option<CheckpointIncumbent>,
}

impl SearchCheckpoint {
    /// An empty checkpoint for the job identified by `fingerprint` and
    /// `seed`.
    pub fn new(graph_fingerprint: u64, seed: u64) -> Self {
        SearchCheckpoint {
            schema_version: CHECKPOINT_SCHEMA_VERSION.to_string(),
            graph_fingerprint,
            seed,
            hybrid: None,
            milp: None,
            incumbent: None,
        }
    }

    /// Checks that this checkpoint belongs to the job defined by
    /// `fingerprint` and `seed`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the field that differs.
    pub fn verify(&self, graph_fingerprint: u64, seed: u64) -> Result<(), CheckpointError> {
        if self.graph_fingerprint != graph_fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "graph fingerprint {:#018x} != expected {:#018x}; \
                 this checkpoint was taken against a different graph",
                self.graph_fingerprint, graph_fingerprint
            )));
        }
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {} != configured seed {}; \
                 profiling and search streams would not line up",
                self.seed, seed
            )));
        }
        Ok(())
    }
}

/// Errors from checkpoint I/O and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The file is not a parseable checkpoint.
    Parse(String),
    /// The file's schema major version is not one this build understands.
    UnsupportedVersion {
        /// The `schema_version` string found in the file.
        found: String,
    },
    /// The checkpoint is valid but belongs to a different job (graph
    /// fingerprint or seed differs).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse error: {msg}"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "checkpoint schema version {found:?} is not supported by this build \
                 (expected major {major})",
                major = schema_major(CHECKPOINT_SCHEMA_VERSION).unwrap_or(1),
            ),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// A deterministic structural fingerprint of a graph: op names, kinds,
/// compute times, memory footprints, colocation groups, and the full
/// weighted edge list. Two graphs that fingerprint equal produce the same
/// profile, coarsening, and search under the same seed, which is exactly
/// the property resume needs. (Std's `DefaultHasher` is SipHash with
/// fixed keys — stable across processes, which is what matters for a
/// checkpoint that outlives its writer.)
pub fn graph_fingerprint(graph: &FrozenGraph) -> u64 {
    let mut h = DefaultHasher::new();
    graph.op_count().hash(&mut h);
    for id in graph.op_ids() {
        let op = graph.op(id);
        op.name().hash(&mut h);
        let kind = match op.kind() {
            pesto_graph::DeviceKind::Cpu => 0u8,
            pesto_graph::DeviceKind::Gpu => 1u8,
            pesto_graph::DeviceKind::Kernel => 2u8,
        };
        kind.hash(&mut h);
        op.compute_us().to_bits().hash(&mut h);
        op.memory_bytes().hash(&mut h);
        op.colocation_group().hash(&mut h);
        op.is_weight_update().hash(&mut h);
    }
    for &(src, dst, bytes) in graph.edges() {
        src.index().hash(&mut h);
        dst.index().hash(&mut h);
        bytes.hash(&mut h);
    }
    h.finish()
}

/// Parses the major component of a `major.minor` schema version.
fn schema_major(version: &str) -> Option<u64> {
    version.split('.').next()?.parse().ok()
}

/// Rejects schema versions whose major this build does not understand.
fn check_schema_version(found: &str) -> Result<(), CheckpointError> {
    let ours = schema_major(CHECKPOINT_SCHEMA_VERSION).expect("our own version parses");
    match schema_major(found) {
        Some(major) if major == ours => Ok(()),
        _ => Err(CheckpointError::UnsupportedVersion {
            found: found.to_string(),
        }),
    }
}

/// Extracts the `schema_version` string field from raw checkpoint JSON
/// without a full typed parse, so version rejection happens *before* we
/// try to deserialize a layout this build may not understand. Handles the
/// subset JSON serialization actually emits (the field value is a plain
/// string with no escapes).
fn extract_schema_version(json: &str) -> Option<String> {
    let key = "\"schema_version\"";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Atomically persists `checkpoint` at `path`: the bytes are written to a
/// sibling temp file and `rename`d into place, so a crash at any point
/// leaves either the old checkpoint or the new one — never a torn file.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure;
/// [`CheckpointError::Parse`] if serialization itself fails.
pub fn save_checkpoint(path: &Path, checkpoint: &SearchCheckpoint) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(checkpoint)
        .map_err(|e| CheckpointError::Parse(format!("serialize: {e}")))?;
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, json.as_bytes())
        .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| {
        CheckpointError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    Ok(())
}

/// File path for generation `generation` of job `stem` under `dir`:
/// `<dir>/<stem>.gen-<N>.json`. Writing successive generations to
/// distinct files (each atomically, via [`save_checkpoint`]) means the
/// previous generation survives until the new one is durably in place;
/// [`prune`] then garbage-collects the superseded ones.
pub fn generation_path(dir: &Path, stem: &str, generation: u64) -> PathBuf {
    dir.join(format!("{stem}.gen-{generation}.json"))
}

/// Parses a generational checkpoint file name back into `(stem, N)`.
/// Returns `None` for anything that is not `<stem>.gen-<N>.json`.
fn parse_generation(name: &str) -> Option<(&str, u64)> {
    let base = name.strip_suffix(".json")?;
    let at = base.rfind(".gen-")?;
    let generation: u64 = base[at + ".gen-".len()..].parse().ok()?;
    Some((&base[..at], generation))
}

/// Finds the newest checkpoint generation of `stem` under `dir`.
/// A missing directory (or no matching files) is `Ok(None)`: restart
/// scans treat "nothing to resume" as a fresh start, not an error.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the directory exists but cannot be listed.
pub fn latest_generation(
    dir: &Path,
    stem: &str,
) -> Result<Option<(u64, PathBuf)>, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(format!("list {}: {e}", dir.display()))),
    };
    let mut newest: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::Io(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((s, generation)) = parse_generation(name) {
            if s == stem && newest.as_ref().is_none_or(|(g, _)| generation > *g) {
                newest = Some((generation, path));
            }
        }
    }
    Ok(newest)
}

/// What [`prune`] deleted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Superseded generation files removed.
    pub removed_generations: usize,
    /// Orphaned `*.tmp` files (from a crash between write and rename)
    /// swept.
    pub removed_tmp: usize,
}

/// Rotation/GC for a checkpoint directory: keeps the newest `keep_n`
/// generations of every job stem (at least one is always kept, even with
/// `keep_n == 0` — pruning must never delete a job's only checkpoint)
/// and sweeps orphaned `*.tmp` files left by a crash between the temp
/// write and the rename.
///
/// A missing directory is a no-op `Ok` — calling this unconditionally on
/// daemon startup is safe before any checkpoint was ever written. The
/// caller must ensure no write is in flight in `dir` while pruning (the
/// `pesto-serve` daemon prunes per-job directories from the job's own
/// worker, and globally only at startup, before workers exist), otherwise
/// the sweep could race a live temp file.
///
/// # Errors
///
/// [`CheckpointError::Io`] if listing the directory or deleting a file
/// fails; deletions already performed are not rolled back.
pub fn prune(dir: &Path, keep_n: usize) -> Result<PruneReport, CheckpointError> {
    let keep_n = keep_n.max(1);
    let mut report = PruneReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(CheckpointError::Io(format!("list {}: {e}", dir.display()))),
    };
    let mut generations: std::collections::BTreeMap<String, Vec<(u64, PathBuf)>> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::Io(format!("list {}: {e}", dir.display())))?;
        let path = entry.path();
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            fs::remove_file(&path)
                .map_err(|e| CheckpointError::Io(format!("remove {}: {e}", path.display())))?;
            report.removed_tmp += 1;
            continue;
        }
        if let Some((stem, generation)) = parse_generation(name) {
            generations
                .entry(stem.to_string())
                .or_default()
                .push((generation, path));
        }
    }
    for (_, mut gens) in generations {
        gens.sort_by_key(|(g, _)| *g);
        let cut = gens.len().saturating_sub(keep_n);
        for (_, path) in gens.drain(..cut) {
            fs::remove_file(&path)
                .map_err(|e| CheckpointError::Io(format!("remove {}: {e}", path.display())))?;
            report.removed_generations += 1;
        }
    }
    Ok(report)
}

/// Loads and validates a checkpoint from `path`.
///
/// The schema major version is checked *before* the full parse, so a
/// future-format file fails with [`CheckpointError::UnsupportedVersion`]
/// rather than an opaque deserialization error.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::UnsupportedVersion`] for unknown majors,
/// [`CheckpointError::Parse`] for anything that is not a checkpoint.
pub fn load_checkpoint(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
    let raw = fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    match extract_schema_version(&raw) {
        Some(version) => check_schema_version(&version)?,
        None => {
            return Err(CheckpointError::Parse(format!(
                "{}: no schema_version field",
                path.display()
            )))
        }
    }
    let checkpoint: SearchCheckpoint = serde_json::from_str(&raw)
        .map_err(|e| CheckpointError::Parse(format!("{}: {e}", path.display())))?;
    Ok(checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_models::ModelSpec;
    use std::path::PathBuf;

    /// The offline stub `serde_json` serializes everything to `""`; real
    /// `serde_json` round-trips. Tests that need real serialization guard
    /// on this.
    fn serde_json_available() -> bool {
        serde_json::to_string(&1u8)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pesto-checkpoint-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn prune_keeps_newest_generations_and_sweeps_tmp() {
        let dir = tmp_path("prune-dir");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for g in 0..5u64 {
            fs::write(generation_path(&dir, "job-a", g), b"{}").unwrap();
        }
        for g in 3..5u64 {
            fs::write(generation_path(&dir, "job-b", g), b"{}").unwrap();
        }
        // Orphaned atomic-write leftovers and unrelated files.
        fs::write(dir.join("job-a.gen-9.json.tmp"), b"torn").unwrap();
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        let report = prune(&dir, 2).unwrap();
        assert_eq!(report.removed_generations, 3, "job-a generations 0..=2");
        assert_eq!(report.removed_tmp, 1);
        assert!(generation_path(&dir, "job-a", 3).exists());
        assert!(generation_path(&dir, "job-a", 4).exists());
        assert!(!generation_path(&dir, "job-a", 0).exists());
        assert!(generation_path(&dir, "job-b", 3).exists());
        assert!(generation_path(&dir, "job-b", 4).exists());
        assert!(!dir.join("job-a.gen-9.json.tmp").exists());
        assert!(dir.join("notes.txt").exists(), "non-checkpoint files stay");
        // Idempotent: a second prune finds nothing left to do.
        assert_eq!(prune(&dir, 2).unwrap(), PruneReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_missing_dir_is_a_noop() {
        let dir = tmp_path("prune-missing");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(prune(&dir, 3).unwrap(), PruneReport::default());
    }

    #[test]
    fn prune_never_deletes_the_only_checkpoint() {
        let dir = tmp_path("prune-keep-one");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(generation_path(&dir, "solo", 7), b"{}").unwrap();
        // keep_n == 0 is clamped: a job's only checkpoint must survive.
        assert_eq!(prune(&dir, 0).unwrap(), PruneReport::default());
        assert!(generation_path(&dir, "solo", 7).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_generation_finds_the_newest_of_the_right_stem() {
        let dir = tmp_path("latest-gen");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(latest_generation(&dir, "job").unwrap(), None);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_generation(&dir, "job").unwrap(), None);
        for g in [2u64, 10, 5] {
            fs::write(generation_path(&dir, "job", g), b"{}").unwrap();
        }
        fs::write(generation_path(&dir, "other", 99), b"{}").unwrap();
        let (generation, path) = latest_generation(&dir, "job").unwrap().unwrap();
        assert_eq!(generation, 10);
        assert_eq!(path, generation_path(&dir, "job", 10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_files_roundtrip_through_the_atomic_writer() {
        if !serde_json_available() {
            return;
        }
        let dir = tmp_path("gen-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ckpt = SearchCheckpoint::new(0xfeed, 3);
        save_checkpoint(&generation_path(&dir, "job", 0), &ckpt).unwrap();
        let mut newer = SearchCheckpoint::new(0xfeed, 3);
        newer.incumbent = None;
        save_checkpoint(&generation_path(&dir, "job", 1), &newer).unwrap();
        let (generation, path) = latest_generation(&dir, "job").unwrap().unwrap();
        assert_eq!(generation, 1);
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.verify(0xfeed, 3), Ok(()));
        // Rotation leaves exactly the newest file.
        prune(&dir, 1).unwrap();
        assert!(!generation_path(&dir, "job", 0).exists());
        assert!(generation_path(&dir, "job", 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let a = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let b = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        let wider = ModelSpec::transformer(1, 2, 128).generate(4, 1);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&wider));
        let deeper = ModelSpec::transformer(2, 2, 64).generate(4, 1);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&deeper));
        // A single op time flips the fingerprint too.
        let mut thawed = a.clone().thaw();
        let id = pesto_graph::OpId::from_index(0);
        let t = thawed.op(id).compute_us();
        thawed.op_mut(id).set_compute_us(t + 1.0);
        let perturbed = thawed.freeze().unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&perturbed));
    }

    #[test]
    fn verify_rejects_the_wrong_job() {
        let ckpt = SearchCheckpoint::new(0xabcd, 7);
        assert_eq!(ckpt.verify(0xabcd, 7), Ok(()));
        assert!(matches!(
            ckpt.verify(0xefef, 7),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            ckpt.verify(0xabcd, 8),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn schema_version_gate_accepts_minors_and_rejects_majors() {
        assert!(check_schema_version("1.0").is_ok());
        assert!(check_schema_version("1.7").is_ok());
        for bad in ["2.0", "0.9", "hello", ""] {
            assert_eq!(
                check_schema_version(bad),
                Err(CheckpointError::UnsupportedVersion {
                    found: bad.to_string()
                }),
                "version {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn version_is_extracted_without_a_full_parse() {
        let json = r#"{"schema_version": "3.1", "graph_fingerprint": 1}"#;
        assert_eq!(extract_schema_version(json).as_deref(), Some("3.1"));
        assert_eq!(extract_schema_version("{}"), None);
    }

    #[test]
    fn save_load_round_trips_and_rejects_future_majors() {
        if !serde_json_available() {
            return; // offline stub serde_json cannot round-trip
        }
        let path = tmp_path("roundtrip.json");
        let ckpt = SearchCheckpoint::new(0x1234_5678, 42);
        save_checkpoint(&path, &ckpt).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back, ckpt);

        // A future-major file is refused cleanly, before parsing.
        let future = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"1.0\"", "\"2.0\"");
        std::fs::write(&path, future).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::UnsupportedVersion { found }) if found == "2.0"
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loading_garbage_is_a_typed_error() {
        let path = tmp_path("garbage.json");
        std::fs::write(&path, "not a checkpoint").unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Parse(_))
        ));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Io(_))
        ));
    }
}
