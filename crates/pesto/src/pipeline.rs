//! The end-to-end Pesto pipeline: profile → coarsen → solve → expand.

use crate::checkpoint::{
    self, CheckpointConfig, CheckpointError, CheckpointIncumbent, SearchCheckpoint,
};
use pesto_coarsen::{coarsen_with_stats, CoarsenConfig};
use pesto_cost::{CommModel, Profiler};
use pesto_graph::{Cluster, FrozenGraph, GraphError, Plan};
use pesto_ilp::{CheckpointSink, IlpError, PestoPlacer, PlacerConfig, SolvePath};
use pesto_obs::{CancelToken, Obs, SolverEventKind};
use pesto_sim::{PipelineStats, SimError, Simulator};
use std::error::Error;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PestoConfig {
    /// Coarsening target (the paper uses ~200 vertices, §3.3).
    pub coarsen_target: usize,
    /// Profiling iterations used to estimate op times (paper: 100). `None`
    /// trusts the graph's compute times as-is.
    pub profiler_iterations: Option<usize>,
    /// When a coarse vertex contains more than this many original ops,
    /// Pesto keeps the placement but falls back to framework-default
    /// scheduling (paper §3.3: "we lose out on scheduling opportunities due
    /// to coarsening, and thus instead employ the default TensorFlow
    /// scheduling").
    pub max_members_for_scheduling: usize,
    /// Placement solver configuration.
    pub placer: PlacerConfig,
    /// Worker threads for the placement solvers. `1` (the default) keeps
    /// every solver on its deterministic serial path. Values `> 1` are
    /// applied in two places: the LP simplex kernels' global pool (via
    /// [`pesto_lp::configure_threads`]; bit-identical results at any
    /// thread count) and the MILP branch-and-bound
    /// ([`pesto_milp::MilpConfig::threads`]; still optimal, but node
    /// counts may vary run to run). An explicit
    /// `placer.ilp.milp.threads` larger than this value wins.
    pub solver_threads: usize,
    /// Deterministic seed (profiling noise + final evaluation tie-breaks).
    pub seed: u64,
    /// Hill-climbing passes of the fine-grained group-flip refinement that
    /// follows coarse solving. `0` disables refinement.
    pub refinement_passes: usize,
    /// Model link congestion during optimization (the paper's constraint
    /// set (7)). Setting `false` reproduces the Figure 5 ablation: the
    /// optimizer believes transfers never queue.
    pub congestion_aware: bool,
    /// Wall-clock budget for the whole pipeline. When set, placement
    /// becomes a deadline-aware fallback chain — exact ILP → hybrid
    /// annealing (cooperative deadline between iterations) → constructive
    /// mSCT → single-device — and the chosen rung is recorded in
    /// [`PestoOutcome::degradation`] instead of erroring out. `None` (the
    /// default) means run to completion.
    pub time_budget: Option<Duration>,
    /// When greater than 1, the final honest evaluation additionally runs
    /// the plan for this many *pipelined* training steps (see
    /// [`pesto_sim::Simulator::with_steps`]) and records the fill /
    /// steady-state / drain breakdown in [`PestoOutcome::pipeline`].
    /// [`PestoOutcome::makespan_us`] stays the single-step time either
    /// way. Defaults to 1 (no pipelined evaluation).
    pub pipeline_steps: usize,
    /// Hierarchical sharded placement for paper-scale graphs. When set,
    /// graphs larger than [`pesto_shard::ShardConfig::region_cap`] are
    /// partitioned into regions, each region is solved independently
    /// (fanned out over [`PestoConfig::solver_threads`] workers, seeded
    /// with `seed + region_index`), and the results are stitched with a
    /// memory rebalance plus a bounded boundary-refinement pass — see the
    /// `pesto-shard` crate. Graphs at or under the cap fall through to
    /// the monolithic path unchanged. Sharded runs keep the `time_budget`
    /// contract (regions get budget shares proportional to their
    /// critical-path weight) but ignore [`PestoConfig::checkpoint`]:
    /// per-region solves are short enough that re-running is the recovery
    /// story. Defaults to `None` (monolithic placement).
    pub shard: Option<pesto_shard::ShardConfig>,
    /// Crash safety: when set, the search state is checkpointed to
    /// [`CheckpointConfig::path`] on the configured cadence (atomic
    /// temp-file + rename writes) and, with [`CheckpointConfig::resume`],
    /// a previous checkpoint warm-starts the hybrid search and the MILP.
    /// A resumed run never finishes worse than the checkpointed incumbent
    /// (the pipeline falls back to it if the continued search somehow
    /// regresses). Defaults to `None` (no checkpointing).
    pub checkpoint: Option<CheckpointConfig>,
    /// Cooperative cancellation: the pipeline polls the token between
    /// stages and the solvers poll it between annealing iterations /
    /// branch-and-bound nodes (alongside their deadlines). A raised token
    /// makes [`Pesto::place`] return [`PestoError::Cancelled`] — it never
    /// degrades into a fallback plan, and no checkpoint is written after
    /// the flag is observed. Defaults to `None` (not cancellable).
    pub cancel: Option<CancelToken>,
    /// Telemetry sink. With [`Obs::enabled`] the pipeline records a span
    /// per stage (`pipeline.profile`, `pipeline.coarsen`, `pipeline.solve`,
    /// `pipeline.refine`, `pipeline.schedule`, `pipeline.simulate`),
    /// profiling/coarsening metrics, and the solver-progress event stream;
    /// the handle is propagated to the placer, the MILP/hybrid solvers and
    /// the final simulation. The default [`Obs::disabled`] sink makes every
    /// instrumentation site a no-op.
    pub obs: Obs,
}

impl Default for PestoConfig {
    fn default() -> Self {
        PestoConfig {
            coarsen_target: 800,
            profiler_iterations: Some(100),
            max_members_for_scheduling: 200,
            placer: PlacerConfig::default(),
            solver_threads: 1,
            seed: 0xbe57,
            refinement_passes: 2,
            congestion_aware: true,
            time_budget: None,
            pipeline_steps: 1,
            shard: None,
            checkpoint: None,
            cancel: None,
            obs: Obs::disabled(),
        }
    }
}

impl PestoConfig {
    /// A faster configuration for tests and examples: coarser graphs and a
    /// lighter search.
    pub fn fast() -> Self {
        PestoConfig {
            coarsen_target: 64,
            placer: PlacerConfig {
                hybrid: pesto_ilp::HybridConfig::quick(),
                ..PlacerConfig::default()
            },
            refinement_passes: 1,
            ..PestoConfig::default()
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PestoError {
    /// Graph-level failure.
    Graph(GraphError),
    /// Solver failure (including out-of-memory verdicts).
    Solve(IlpError),
    /// Final simulation failure.
    Sim(SimError),
    /// The cluster has no GPU devices; Pesto places GPU operations.
    NoGpus,
    /// Post-outage plan repair failed (e.g. the failed device was not a
    /// GPU of the cluster).
    Repair(String),
    /// Checkpoint I/O, parsing, versioning, or job-identity failure.
    Checkpoint(CheckpointError),
    /// A configuration value makes the requested computation meaningless
    /// (e.g. a robustness sweep over zero draws).
    InvalidConfig(String),
    /// The job's [`PestoConfig::cancel`] token was raised; the pipeline
    /// stopped cooperatively without producing a plan, and wrote no
    /// checkpoint after the flag was observed.
    Cancelled,
}

impl fmt::Display for PestoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PestoError::Graph(e) => write!(f, "graph error: {e}"),
            PestoError::Solve(e) => write!(f, "solver error: {e}"),
            PestoError::Sim(e) => write!(f, "simulation error: {e}"),
            PestoError::NoGpus => {
                write!(
                    f,
                    "cluster has no GPUs; Pesto needs at least one GPU device"
                )
            }
            PestoError::Repair(msg) => write!(f, "plan repair failed: {msg}"),
            PestoError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            PestoError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PestoError::Cancelled => write!(f, "placement job cancelled"),
        }
    }
}

impl PestoError {
    /// Whether retrying the same job can plausibly succeed.
    ///
    /// This single classification drives both the `pesto-serve` retry
    /// policy (retryable failures get exponential backoff; permanent ones
    /// fail the job immediately) and the CLI's exit code (`75`,
    /// `EX_TEMPFAIL`, for retryable vs `1` for permanent), so operators
    /// and scripts see the same verdict the server acts on.
    ///
    /// Retryable:
    ///
    /// * transient checkpoint I/O failures ([`CheckpointError::Io`]) — the
    ///   filesystem may recover;
    /// * [`IlpError::NoSolution`] — the stochastic search ran out of
    ///   limits before finding a feasible plan; a retry (typically with a
    ///   fresh seed or a larger budget) can find one.
    ///
    /// Everything else is permanent: malformed inputs, proven
    /// infeasibility (including out-of-memory verdicts — retrying cannot
    /// shrink the model), checkpoint/job mismatches, and explicit
    /// cancellation.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PestoError::Checkpoint(CheckpointError::Io(_))
                | PestoError::Solve(IlpError::NoSolution)
        )
    }
}

impl Error for PestoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PestoError::Graph(e) => Some(e),
            PestoError::Solve(e) => Some(e),
            PestoError::Sim(e) => Some(e),
            PestoError::Checkpoint(e) => Some(e),
            PestoError::NoGpus
            | PestoError::Repair(_)
            | PestoError::InvalidConfig(_)
            | PestoError::Cancelled => None,
        }
    }
}

impl From<CheckpointError> for PestoError {
    fn from(e: CheckpointError) -> Self {
        PestoError::Checkpoint(e)
    }
}

impl From<GraphError> for PestoError {
    fn from(e: GraphError) -> Self {
        PestoError::Graph(e)
    }
}
impl From<IlpError> for PestoError {
    fn from(e: IlpError) -> Self {
        match e {
            IlpError::Cancelled => PestoError::Cancelled,
            other => PestoError::Solve(other),
        }
    }
}
impl From<SimError> for PestoError {
    fn from(e: SimError) -> Self {
        PestoError::Sim(e)
    }
}
impl From<pesto_shard::ShardError> for PestoError {
    fn from(e: pesto_shard::ShardError) -> Self {
        match e {
            pesto_shard::ShardError::Graph(g) => PestoError::Graph(g),
            pesto_shard::ShardError::Solve(s) => PestoError::Solve(s),
            // The stitch rebalance proved the model cannot fit: the same
            // permanent verdict as the monolithic path's OOM error.
            pesto_shard::ShardError::Infeasible(msg) => PestoError::Repair(msg),
            pesto_shard::ShardError::Cancelled => PestoError::Cancelled,
            // `ShardError` is non_exhaustive; treat unknown variants as
            // solver failures with their message.
            other => PestoError::Repair(other.to_string()),
        }
    }
}

/// Why the pipeline degraded from its preferred solve path. Recorded in
/// [`PestoOutcome::degradation`] instead of surfacing as an error: under a
/// [`PestoConfig::time_budget`] a worse-but-valid plan beats no plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DegradationReason {
    /// The deadline fired mid-search: the hybrid annealer returned its
    /// incumbent early, the exact ILP was skipped or cut short, or the
    /// group-flip refinement was abandoned partway.
    DeadlineDuringSearch,
    /// Too little budget remained after profiling and coarsening to start
    /// the search at all; a constructive mSCT placement was used.
    BudgetTooSmallForSearch,
    /// The budget was already spent before placement began; every op was
    /// kept on a single device.
    BudgetExhausted,
    /// The solver failed outright (carries its error message); a
    /// constructive mSCT placement was used instead. Out-of-memory
    /// verdicts are *not* masked this way — they still surface as errors,
    /// because no placement rung can fix an infeasible memory footprint.
    SolverFailed(String),
}

impl DegradationReason {
    /// Stable machine-readable tag for this variant, used as the `reason`
    /// field of the telemetry `Degradation` event (the human-readable
    /// `Display` form may change; this tag will not).
    pub fn tag(&self) -> &'static str {
        match self {
            DegradationReason::DeadlineDuringSearch => "deadline_during_search",
            DegradationReason::BudgetTooSmallForSearch => "budget_too_small_for_search",
            DegradationReason::BudgetExhausted => "budget_exhausted",
            DegradationReason::SolverFailed(_) => "solver_failed",
        }
    }
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::DeadlineDuringSearch => {
                write!(f, "deadline fired during search; kept the incumbent")
            }
            DegradationReason::BudgetTooSmallForSearch => {
                write!(f, "budget too small for search; used constructive mSCT")
            }
            DegradationReason::BudgetExhausted => {
                write!(f, "budget exhausted before placement; used a single device")
            }
            DegradationReason::SolverFailed(msg) => {
                write!(f, "solver failed ({msg}); used constructive mSCT")
            }
        }
    }
}

/// Wall-clock time of one pipeline stage. Always populated in
/// [`PestoOutcome::stage_timings`], even with observability disabled: per
/// stage it costs two clock reads and one `Vec` push.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name: one of `profile`, `coarsen`, `solve`, `refine`,
    /// `schedule`, `simulate` (degraded runs skip the middle stages;
    /// sharded runs record `profile`, `partition`, `solve`, `stitch`,
    /// `simulate`).
    pub stage: &'static str,
    /// Wall-clock duration of the stage, µs.
    pub wall_us: f64,
}

/// Runs one pipeline stage under a `pipeline.<stage>` span and appends its
/// wall time to `timings` (timing happens even with observability off).
fn timed_stage<T>(
    obs: &Obs,
    timings: &mut Vec<StageTiming>,
    stage: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let t0 = Instant::now();
    let span = obs.span(format!("pipeline.{stage}"));
    let out = f();
    drop(span);
    timings.push(StageTiming {
        stage,
        wall_us: t0.elapsed().as_secs_f64() * 1e6,
    });
    out
}

/// Result of the full pipeline.
#[derive(Debug, Clone)]
pub struct PestoOutcome {
    /// The final fine-grained plan.
    pub plan: Plan,
    /// Simulated per-step training time of the plan on the *true* op times
    /// (placement was computed from profiled estimates), µs.
    pub makespan_us: f64,
    /// Wall-clock time spent finding the placement (the paper's "placement
    /// time", Table 2).
    pub placement_time: Duration,
    /// Vertices after coarsening.
    pub coarse_op_count: usize,
    /// Largest merged-vertex size.
    pub max_member_count: usize,
    /// Which solver path produced the coarse plan.
    pub path: SolvePath,
    /// Whether explicit Pesto scheduling was kept (vs framework-default
    /// fallback for very coarse merges).
    pub explicit_schedule: bool,
    /// Why (if at all) the pipeline fell back from its preferred path.
    /// `None` means the full search ran to completion.
    pub degradation: Option<DegradationReason>,
    /// Whether this run warm-started from a [`PestoConfig::checkpoint`]
    /// file (as opposed to searching from scratch).
    pub resumed: bool,
    /// Fill / steady-state / drain breakdown of a
    /// [`PestoConfig::pipeline_steps`]-step pipelined run of the plan.
    /// `None` when `pipeline_steps <= 1`.
    pub pipeline: Option<PipelineStats>,
    /// Per-op mean observed compute times from the pipelined run's spans
    /// (`None` entries for ops with no measurement) — ready to feed
    /// [`crate::replace_after_drift_observed`], closing the
    /// observe→detect→re-place loop without hand-built vectors. `None`
    /// as a whole when `pipeline_steps <= 1`.
    pub observed_op_us: Option<Vec<Option<f64>>>,
    /// Per-stage wall time of this run, in execution order. Populated on
    /// every run — including degraded ones, which skip the search stages —
    /// regardless of whether [`PestoConfig::obs`] is enabled.
    pub stage_timings: Vec<StageTiming>,
    /// Shard report (partition shape, per-region solve provenance, stitch
    /// repairs) when the run took the [`SolvePath::Sharded`] path; `None`
    /// for monolithic runs.
    pub shard: Option<pesto_shard::ShardReport>,
}

/// Hill climbing on the fine graph at merged-group granularity: for each
/// coarse vertex, try moving all its members to each other GPU and keep
/// the first improvement of the fine ETF-scheduled makespan (with a memory
/// penalty mirroring the hybrid solver's).
///
/// Returns the refined placement and whether `deadline` cut the climb
/// short (the incumbent placement is still valid in that case).
#[allow(clippy::too_many_arguments)]
fn refine_by_group_flips(
    estimated: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    coarsening: &pesto_coarsen::Coarsening,
    mut placement: pesto_graph::Placement,
    sim: &Simulator<'_>,
    passes: usize,
    deadline: Option<Instant>,
) -> Result<(pesto_graph::Placement, bool), PestoError> {
    let expired = || deadline.is_some_and(|d| Instant::now() >= d);
    if passes == 0 || cluster.gpu_count() < 2 {
        return Ok((placement, false));
    }
    if expired() {
        return Ok((placement, true));
    }
    let cost_of = |p: pesto_graph::Placement| -> Result<(f64, pesto_graph::Placement), PestoError> {
        let sched =
            pesto_ilp::etf_schedule(estimated, cluster, comm, p, sim).map_err(IlpError::from)?;
        let mut cost = sched.report.makespan_us;
        let usage = sched.plan.placement.memory_per_device(estimated, cluster);
        for (d, &used) in usage.iter().enumerate() {
            let cap = cluster.devices()[d].memory_bytes();
            if used > cap {
                cost +=
                    estimated.total_compute_us() * (1.0 + (used - cap) as f64 / cap.max(1) as f64);
            }
        }
        Ok((cost, sched.plan.placement))
    };
    let (mut best_cost, _) = cost_of(placement.clone())?;
    let coarse = coarsening.coarse();
    // Visit heavy groups first: they move the makespan the most.
    let mut groups: Vec<pesto_graph::OpId> = coarse
        .op_ids()
        .filter(|&cv| coarse.op(cv).kind() == pesto_graph::DeviceKind::Gpu)
        .collect();
    groups.sort_by(|&a, &b| {
        coarse
            .op(b)
            .compute_us()
            .total_cmp(&coarse.op(a).compute_us())
    });
    for _ in 0..passes {
        let mut improved = false;
        for &cv in &groups {
            if expired() {
                return Ok((placement, true));
            }
            let members = coarsening.members(cv);
            let current = placement.device(members[0]);
            for gpu in cluster.gpus() {
                if gpu == current {
                    continue;
                }
                let mut cand = placement.clone();
                for &f in members {
                    cand.set_device(f, gpu);
                }
                let (cost, cand) = cost_of(cand)?;
                if cost < best_cost - 1e-9 {
                    best_cost = cost;
                    placement = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok((placement, false))
}

/// The Pesto pipeline.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Pesto {
    comm: CommModel,
    config: PestoConfig,
}

impl Pesto {
    /// Creates a pipeline with the default V100/NVlink communication model.
    pub fn new(config: PestoConfig) -> Self {
        Pesto {
            comm: CommModel::default_v100(),
            config,
        }
    }

    /// Creates a pipeline with an explicit communication model (e.g. a
    /// calibrated or hardware-scaled one).
    pub fn with_comm(comm: CommModel, config: PestoConfig) -> Self {
        Pesto { comm, config }
    }

    /// The communication model in use.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    /// Runs the plan for [`PestoConfig::pipeline_steps`] pipelined steps
    /// on the true op times and returns the per-step breakdown together
    /// with the per-op observation vector extracted from the run's spans
    /// ([`pesto_sim::SimReport::observed_op_us`]). `None` when
    /// `pipeline_steps <= 1`.
    #[allow(clippy::type_complexity)]
    fn pipelined_stats(
        &self,
        graph: &FrozenGraph,
        cluster: &Cluster,
        plan: &Plan,
    ) -> Result<Option<(PipelineStats, Vec<Option<f64>>)>, PestoError> {
        if self.config.pipeline_steps <= 1 {
            return Ok(None);
        }
        let report = Simulator::new(graph, cluster, self.comm)
            .with_seed(self.config.seed)
            .with_steps(self.config.pipeline_steps)
            .run(plan)?;
        let observed = report.observed_op_us(graph.op_count());
        Ok(report.pipeline.map(|p| (p, observed)))
    }

    /// Emits the telemetry `Degradation` event for `reason`, tagged with
    /// how much of the [`PestoConfig::time_budget`] deadline remained at
    /// the moment the pipeline gave up (negative-or-zero budgets and
    /// already-expired deadlines report `0`; no budget reports infinity,
    /// which exports as JSON `null`).
    fn emit_degradation(&self, start: Instant, reason: &DegradationReason) {
        let obs = &self.config.obs;
        if !obs.is_enabled() {
            return;
        }
        let remaining_deadline_us = self.config.time_budget.map_or(f64::INFINITY, |b| {
            (start + b)
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO)
                .as_secs_f64()
                * 1e6
        });
        obs.solver_event(
            "pipeline",
            SolverEventKind::Degradation {
                reason: reason.tag().to_string(),
                remaining_deadline_us,
            },
        );
    }

    /// Typed early-out for [`PestoConfig::cancel`], polled between
    /// pipeline stages (the solvers poll the same token at finer grain).
    fn check_cancel(&self) -> Result<(), PestoError> {
        if self
            .config
            .cancel
            .as_ref()
            .is_some_and(|c| c.is_cancelled())
        {
            return Err(PestoError::Cancelled);
        }
        Ok(())
    }

    /// Builds a degraded-but-valid outcome for the lower rungs of the
    /// fallback ladder: a constructive mSCT plan, or (last resort) every
    /// op on a single device. Honestly simulated on the true op times.
    #[allow(clippy::too_many_arguments)]
    fn degraded_outcome(
        &self,
        graph: &FrozenGraph,
        estimated: &FrozenGraph,
        cluster: &Cluster,
        start: Instant,
        path: SolvePath,
        reason: DegradationReason,
        mut stage_timings: Vec<StageTiming>,
    ) -> Result<PestoOutcome, PestoError> {
        // A cancelled job never degrades: the caller wants no plan at all.
        self.check_cancel()?;
        self.emit_degradation(start, &reason);
        let obs = &self.config.obs;
        let plan = match path {
            SolvePath::SingleDevice => {
                Plan::placement_only(pesto_graph::Placement::affinity_default(graph, cluster))
            }
            _ => pesto_baselines::m_sct(estimated, cluster, &self.comm),
        };
        let placement_time = start.elapsed();
        let explicit_schedule = plan.order.is_some();
        let report = timed_stage(obs, &mut stage_timings, "simulate", || {
            Simulator::new(graph, cluster, self.comm)
                .with_seed(self.config.seed)
                .with_obs(obs.clone())
                .run(&plan)
        })?;
        let (pipeline, observed_op_us) = match self.pipelined_stats(graph, cluster, &plan)? {
            Some((stats, observed)) => (Some(stats), Some(observed)),
            None => (None, None),
        };
        Ok(PestoOutcome {
            plan,
            makespan_us: report.makespan_us,
            placement_time,
            coarse_op_count: graph.op_count(),
            max_member_count: 1,
            path,
            explicit_schedule,
            degradation: Some(reason),
            resumed: false,
            pipeline,
            observed_op_us,
            stage_timings,
            shard: None,
        })
    }

    /// The sharded pipeline path: partition → per-region solve → stitch →
    /// honest simulation. Taken when [`PestoConfig::shard`] is set and the
    /// (profiled) graph is larger than the region cap.
    #[allow(clippy::too_many_arguments)]
    fn place_sharded(
        &self,
        graph: &FrozenGraph,
        estimated: &FrozenGraph,
        cluster: &Cluster,
        start: Instant,
        shard_config: &pesto_shard::ShardConfig,
        mut stage_timings: Vec<StageTiming>,
    ) -> Result<PestoOutcome, PestoError> {
        let obs = self.config.obs.clone();
        // The shard gets ~85% of whatever budget remains after profiling;
        // the reserve covers the honest final simulation.
        let shard_budget = self
            .config
            .time_budget
            .map(|b| b.saturating_sub(start.elapsed()).mul_f64(0.85));
        if self.config.solver_threads > 1 {
            pesto_lp::configure_threads(self.config.solver_threads);
        }
        let sharder = pesto_shard::Sharder::new(self.comm, shard_config.clone());
        let run = pesto_shard::ShardRun {
            seed: self.config.seed,
            threads: self.config.solver_threads.max(1),
            time_budget: shard_budget,
            cancel: self.config.cancel.clone(),
            obs: obs.clone(),
        };
        let outcome = {
            let _span = obs.span("pipeline.shard");
            sharder.place(estimated, cluster, &run)?
        };
        let report = outcome.report;
        // The sharder timed its phases; surface them as pipeline stages so
        // `stage_timings` stays the one place operators look.
        stage_timings.push(StageTiming {
            stage: "partition",
            wall_us: report.partition_ms * 1e3,
        });
        stage_timings.push(StageTiming {
            stage: "solve",
            wall_us: report.solve_ms * 1e3,
        });
        stage_timings.push(StageTiming {
            stage: "stitch",
            wall_us: report.stitch_ms * 1e3,
        });
        let mut degradation = report
            .deadline_hit
            .then_some(DegradationReason::DeadlineDuringSearch);

        // Seam repair at global scope: the same group-flip hill climbing
        // the monolithic path runs, over a fresh coarsening of the whole
        // graph, evaluated against true ETF makespans. Region solves are
        // locally good but blind to each other; this is where cross-region
        // placements get reconciled. Deadline-bounded, so paper-scale runs
        // stay inside the budget.
        self.check_cancel()?;
        let deadline = self.config.time_budget.map(|b| start + b);
        let mut placement = outcome.placement;
        let sim_est = Simulator::new(estimated, cluster, self.comm)
            .with_memory_check(false)
            .with_infinite_links(!self.config.congestion_aware);
        if self.config.refinement_passes > 0 {
            let coarsening = pesto_coarsen::coarsen(
                estimated,
                &pesto_coarsen::CoarsenConfig::to_target(self.config.coarsen_target),
            );
            let (refined, refine_truncated) =
                timed_stage(&obs, &mut stage_timings, "refine", || {
                    refine_by_group_flips(
                        estimated,
                        cluster,
                        &self.comm,
                        &coarsening,
                        placement,
                        &sim_est,
                        self.config.refinement_passes,
                        deadline,
                    )
                })?;
            placement = refined;
            if refine_truncated && degradation.is_none() {
                degradation = Some(DegradationReason::DeadlineDuringSearch);
            }
        }
        if let Some(reason) = &degradation {
            self.emit_degradation(start, reason);
        }
        // Re-derive the fine op-level schedule (the control dependencies
        // Pesto injects into TensorFlow, §4): one ETF pass over the full
        // graph, cheap even at paper scale, so sharded plans are not
        // penalized with framework-default scheduling.
        let plan = timed_stage(&obs, &mut stage_timings, "schedule", || {
            let scheduled = pesto_ilp::etf_schedule(
                estimated,
                cluster,
                &self.comm,
                placement.clone(),
                &sim_est,
            )
            .map_err(IlpError::from)
            .map_err(PestoError::from)?;
            Ok::<Plan, PestoError>(scheduled.plan)
        })?;
        let placement_time = start.elapsed();

        self.check_cancel()?;
        let mut plan = plan;
        let mut sim_report = timed_stage(&obs, &mut stage_timings, "simulate", || {
            Simulator::new(graph, cluster, self.comm)
                .with_seed(self.config.seed)
                .with_obs(obs.clone())
                .run(&plan)
        })?;
        // mSCT safety net: a decomposed solve can, on unlucky seams, land
        // behind the global constructive baseline. The baseline is cheap
        // even at paper scale, so compare honestly and never ship worse
        // than mSCT (mirrors the resume path's never-worse guard).
        let msct_plan = pesto_baselines::m_sct(estimated, cluster, &self.comm);
        if msct_plan
            .placement
            .oom_devices(estimated, cluster)
            .is_empty()
        {
            if let Ok(msct_report) = Simulator::new(graph, cluster, self.comm)
                .with_seed(self.config.seed)
                .run(&msct_plan)
            {
                if msct_report.makespan_us < sim_report.makespan_us {
                    plan = msct_plan;
                    sim_report = msct_report;
                }
            }
        }
        let (pipeline, observed_op_us) = match self.pipelined_stats(graph, cluster, &plan)? {
            Some((stats, observed)) => (Some(stats), Some(observed)),
            None => (None, None),
        };
        let max_region_ops = report.regions.iter().map(|r| r.ops).max().unwrap_or(0);
        Ok(PestoOutcome {
            plan,
            makespan_us: sim_report.makespan_us,
            placement_time,
            coarse_op_count: report.regions.len(),
            max_member_count: max_region_ops,
            path: SolvePath::Sharded,
            explicit_schedule: true,
            degradation,
            resumed: false,
            pipeline,
            observed_op_us,
            stage_timings,
            shard: Some(report),
        })
    }

    /// Runs the full pipeline on `graph` (whose op times act as ground
    /// truth) and returns the plan plus its simulated per-step time.
    ///
    /// With a [`PestoConfig::time_budget`] set, the pipeline degrades
    /// instead of overrunning: the search gets ~80% of the budget as a
    /// cooperative deadline, and when even that is gone it falls back to a
    /// constructive mSCT placement or, past the budget entirely, to a
    /// single device. The rung taken is recorded in
    /// [`PestoOutcome::degradation`].
    ///
    /// # Errors
    ///
    /// * [`PestoError::NoGpus`] if the cluster has no GPU devices;
    /// * solver errors — notably an out-of-memory verdict when no
    ///   memory-feasible placement exists — and simulation failures.
    pub fn place(
        &self,
        graph: &FrozenGraph,
        cluster: &Cluster,
    ) -> Result<PestoOutcome, PestoError> {
        let start = Instant::now();
        if cluster.gpu_count() == 0 {
            return Err(PestoError::NoGpus);
        }
        self.check_cancel()?;
        // Crash safety: identify the job (graph fingerprint + seed) and
        // load any prior checkpoint *before* spending budget on profiling,
        // so an invalid resume fails fast and typed.
        let fingerprint = self
            .config
            .checkpoint
            .as_ref()
            .map(|_| checkpoint::graph_fingerprint(graph));
        let mut resume_state: Option<SearchCheckpoint> = None;
        if let Some(ck) = &self.config.checkpoint {
            if ck.resume && ck.path.exists() {
                let loaded = checkpoint::load_checkpoint(&ck.path)?;
                loaded.verify(fingerprint.expect("fingerprint computed"), self.config.seed)?;
                resume_state = Some(loaded);
            }
        }
        let resumed = resume_state.is_some();
        let deadline = self.config.time_budget.map(|b| start + b);
        let obs = self.config.obs.clone();
        let mut pipe_span = obs.span("pesto.place");
        pipe_span.set_attr("ops", graph.op_count());
        pipe_span.set_attr("gpus", cluster.gpu_count());
        let mut stage_timings = Vec::new();

        // 1. Profile: placement decisions use *estimated* times (§3.1).
        let estimated = timed_stage(&obs, &mut stage_timings, "profile", || {
            match self.config.profiler_iterations {
                Some(iters) => {
                    let report = Profiler::new(iters.max(2), self.config.seed).profile(graph);
                    if obs.is_enabled() {
                        // Profile-quality telemetry: the per-op measurement
                        // noise (relative std-dev across iterations) and the
                        // R² of the linear transfer-time fits the placement
                        // will trust.
                        for s in report.normalized_std() {
                            obs.observe("profile.normalized_std", s);
                        }
                        for (link, name) in [
                            (pesto_graph::LinkType::CpuToGpu, "cpu_gpu"),
                            (pesto_graph::LinkType::GpuToCpu, "gpu_cpu"),
                            (pesto_graph::LinkType::GpuToGpu, "gpu_gpu"),
                        ] {
                            obs.gauge_set(
                                &format!("profile.comm_r2.{name}"),
                                self.comm.fit(link).r2,
                            );
                        }
                    }
                    report.apply_to(graph.clone())
                }
                None => graph.clone(),
            }
        });

        // Hierarchical sharding: large graphs take the partition → solve →
        // stitch path instead of monolithic coarsen+solve. Small graphs
        // fall through so `--shard` is safe to leave on unconditionally.
        if let Some(shard_config) = &self.config.shard {
            if graph.op_count() > shard_config.region_cap {
                self.check_cancel()?;
                // Same lower rungs as the monolithic ladder: no budget
                // left means no sharded search either.
                if let Some(budget) = self.config.time_budget {
                    let elapsed = start.elapsed();
                    if elapsed >= budget {
                        return self.degraded_outcome(
                            graph,
                            &estimated,
                            cluster,
                            start,
                            SolvePath::SingleDevice,
                            DegradationReason::BudgetExhausted,
                            stage_timings,
                        );
                    }
                }
                let outcome = self.place_sharded(
                    graph,
                    &estimated,
                    cluster,
                    start,
                    shard_config,
                    stage_timings,
                );
                pipe_span.set_attr("path", "Sharded");
                return outcome;
            }
        }

        // 2. Coarsen (§3.3). Parallel fine edges that collapse into one
        //    coarse edge still pay one fixed transfer latency each on the
        //    real link, so the coarse edge is inflated by the latency-
        //    equivalent bytes β0/β1 per collapsed edge.
        let gg = self.comm.fit(pesto_graph::LinkType::GpuToGpu);
        // Scale-aware target: always coarsen at least ~4x (so the solver
        // works on merged vertices), but never above the configured cap.
        let target = self
            .config
            .coarsen_target
            .min((graph.op_count() / 4).max(200));
        let coarsen_config = CoarsenConfig {
            parallel_edge_penalty_bytes: if gg.beta1 > 0.0 {
                (gg.beta0 / gg.beta1) as u64
            } else {
                0
            },
            ..CoarsenConfig::to_target(target)
        };
        self.check_cancel()?;
        let (coarsening, rounds) = timed_stage(&obs, &mut stage_timings, "coarsen", || {
            coarsen_with_stats(&estimated, &coarsen_config)
        });
        if obs.is_enabled() {
            obs.gauge_set("coarsen.ops_before", estimated.op_count() as f64);
            obs.gauge_set("coarsen.ops_after", coarsening.coarse().op_count() as f64);
            obs.gauge_set("coarsen.rounds", rounds.len() as f64);
            obs.gauge_set(
                "coarsen.max_member_count",
                coarsening.max_member_count() as f64,
            );
            for r in &rounds {
                obs.observe("coarsen.edge_removal_frac", r.edge_removal_frac());
            }
        }
        let coarse = coarsening.coarse();

        // Degradation ladder, lower rungs: if profiling + coarsening ate
        // the whole budget there is no time to search. With under an
        // eighth of the budget left, a constructive mSCT placement is the
        // best we can justify; with nothing left, a single device is.
        if let Some(budget) = self.config.time_budget {
            let elapsed = start.elapsed();
            if elapsed >= budget {
                return self.degraded_outcome(
                    graph,
                    &estimated,
                    cluster,
                    start,
                    SolvePath::SingleDevice,
                    DegradationReason::BudgetExhausted,
                    stage_timings,
                );
            }
            if budget - elapsed < budget.mul_f64(0.125) {
                return self.degraded_outcome(
                    graph,
                    &estimated,
                    cluster,
                    start,
                    SolvePath::Constructive,
                    DegradationReason::BudgetTooSmallForSearch,
                    stage_timings,
                );
            }
        }

        // 3. Solve placement + scheduling on the coarse graph (§3.2). The
        //    hybrid search is seeded with constructive placements (the
        //    Baechi heuristics run on the coarse graph), so its result can
        //    only improve on them.
        self.check_cancel()?;
        let mut placer_config = self.config.placer.clone();
        if placer_config.cancel.is_none() {
            placer_config.cancel = self.config.cancel.clone();
        }
        // Parallel solvers: install the LP-kernel pool size (process-global,
        // first caller wins) and hand the B&B its worker count.
        if self.config.solver_threads > 1 {
            pesto_lp::configure_threads(self.config.solver_threads);
        }
        placer_config.ilp.milp.threads = placer_config
            .ilp
            .milp
            .threads
            .max(self.config.solver_threads.max(1));
        // Seeds: constructive heuristics on the coarse graph, plus the
        // fine-grained mSCT placement projected onto the coarse vertices by
        // member-compute-weighted majority vote.
        let fine_msct = pesto_baselines::m_sct(&estimated, cluster, &self.comm).placement;
        let mut projected = pesto_graph::Placement::affinity_default(coarse, cluster);
        for cv in coarse.op_ids() {
            if coarse.op(cv).kind() != pesto_graph::DeviceKind::Gpu {
                continue;
            }
            let mut weight_per_dev = vec![0.0f64; cluster.device_count()];
            for &f in coarsening.members(cv) {
                weight_per_dev[fine_msct.device(f).index()] +=
                    estimated.op(f).compute_us().max(1e-3);
            }
            let best = cluster
                .gpus()
                .into_iter()
                .max_by(|a, b| weight_per_dev[a.index()].total_cmp(&weight_per_dev[b.index()]))
                .expect("cluster has gpus");
            projected.set_device(cv, best);
        }
        placer_config.hybrid.infinite_links = !self.config.congestion_aware;
        placer_config.hybrid.initial_placements.extend([
            projected,
            pesto_baselines::m_sct(coarse, cluster, &self.comm).placement,
            pesto_baselines::m_etf(coarse, cluster, &self.comm).placement,
        ]);
        // The search gets ~80% of the budget; the rest is reserved for
        // expansion, refinement, and the honest final simulation.
        if placer_config.deadline.is_none() {
            placer_config.deadline = self.config.time_budget.map(|b| start + b.mul_f64(0.8));
        }
        if !placer_config.obs.is_enabled() {
            placer_config.obs = obs.clone();
        }
        // Crash safety: warm-start the search from the loaded checkpoint
        // and install the periodic snapshot sink. The sink expands the
        // coarse incumbent to a fine placement-only plan so the file is
        // useful even to a reader with no solver at hand.
        if let Some(loaded) = &resume_state {
            if let Some(hybrid) = &loaded.hybrid {
                placer_config.hybrid.resume_from = Some(hybrid.clone());
            }
            if let Some(milp) = &loaded.milp {
                placer_config.ilp.milp = placer_config.ilp.milp.clone().resume_from(milp);
            }
        }
        if let Some(ck) = &self.config.checkpoint {
            let fp = fingerprint.expect("fingerprint computed");
            let seed = self.config.seed;
            let sink_path = ck.path.clone();
            let sink_coarsening = coarsening.clone();
            let carried_milp = resume_state.as_ref().and_then(|l| l.milp.clone());
            // Snapshots may fire from concurrent restart threads; the
            // temp-file protocol needs them serialized.
            let write_lock = Mutex::new(());
            placer_config.hybrid.checkpoint_every = ck.every_iters;
            placer_config.hybrid.checkpoint_sink = Some(CheckpointSink::new(move |state| {
                let _guard = write_lock.lock().unwrap_or_else(|p| p.into_inner());
                let mut ckpt = SearchCheckpoint::new(fp, seed);
                ckpt.hybrid = Some(state.clone());
                ckpt.milp = carried_milp.clone();
                ckpt.incumbent = state.incumbent().map(|(p, _)| CheckpointIncumbent {
                    plan: Plan::placement_only(sink_coarsening.expand_placement(p)),
                    makespan_us: None,
                });
                // A failed mid-run snapshot must not kill the search; the
                // next cadence tick (or the final write) retries.
                let _ = checkpoint::save_checkpoint(&sink_path, &ckpt);
            }));
        }
        let placer = PestoPlacer::with_config(self.comm, placer_config);
        let solve_result = timed_stage(&obs, &mut stage_timings, "solve", || {
            placer.place(coarse, cluster)
        });
        let outcome = match solve_result {
            Ok(outcome) => outcome,
            // OOM is not recoverable by falling down the ladder: no rung
            // can shrink the model's memory footprint.
            Err(e @ IlpError::Sim(SimError::OutOfMemory(_))) => return Err(e.into()),
            // Cancellation is not a solver failure; it propagates typed
            // instead of degrading into a fallback plan.
            Err(IlpError::Cancelled) => return Err(PestoError::Cancelled),
            Err(e) => {
                return self.degraded_outcome(
                    graph,
                    &estimated,
                    cluster,
                    start,
                    SolvePath::Constructive,
                    DegradationReason::SolverFailed(e.to_string()),
                    stage_timings,
                )
            }
        };
        let mut degradation = outcome
            .deadline_hit
            .then_some(DegradationReason::DeadlineDuringSearch);

        // 4. Expand to the fine graph and refine: group-flip hill climbing
        //    evaluated on the fine graph closes the residual gap between
        //    the coarse model and fine-grained reality.
        self.check_cancel()?;
        let mut fine_placement = coarsening.expand_placement(&outcome.plan.placement);
        let sim_est = Simulator::new(&estimated, cluster, self.comm)
            .with_memory_check(false)
            .with_infinite_links(!self.config.congestion_aware);
        let (refined, refine_truncated) = timed_stage(&obs, &mut stage_timings, "refine", || {
            refine_by_group_flips(
                &estimated,
                cluster,
                &self.comm,
                &coarsening,
                fine_placement,
                &sim_est,
                self.config.refinement_passes,
                deadline,
            )
        })?;
        fine_placement = refined;
        if refine_truncated && degradation.is_none() {
            degradation = Some(DegradationReason::DeadlineDuringSearch);
        }
        if let Some(reason) = &degradation {
            self.emit_degradation(start, reason);
        }

        //    Drop explicit scheduling when merged vertices are too large
        //    (§3.3 fallback); otherwise re-derive the op-level schedule at
        //    fine granularity (the control dependencies Pesto injects into
        //    TensorFlow, §4).
        let explicit_schedule =
            coarsening.max_member_count() <= self.config.max_members_for_scheduling;
        let plan = timed_stage(&obs, &mut stage_timings, "schedule", || {
            if explicit_schedule {
                Ok(pesto_ilp::etf_schedule(
                    &estimated,
                    cluster,
                    &self.comm,
                    fine_placement,
                    &sim_est,
                )
                .map_err(IlpError::from)?
                .plan)
            } else {
                Ok::<_, PestoError>(Plan::placement_only(fine_placement))
            }
        })?;
        let placement_time = start.elapsed();

        // 5. Honest evaluation on the true op times.
        self.check_cancel()?;
        let mut plan = plan;
        let mut report = timed_stage(&obs, &mut stage_timings, "simulate", || {
            Simulator::new(graph, cluster, self.comm)
                .with_seed(self.config.seed)
                .with_obs(obs.clone())
                .run(&plan)
        })?;

        // Never-worse guarantee: a resumed run must not finish behind the
        // incumbent its checkpoint already held. If the continued search
        // regressed (different refinement trajectory, tighter deadline),
        // fall back to the checkpointed plan, honestly re-simulated under
        // the same seed.
        if let Some(inc) = resume_state.as_ref().and_then(|l| l.incumbent.as_ref()) {
            if inc.plan.placement.op_count() == graph.op_count() {
                if let Ok(inc_report) = Simulator::new(graph, cluster, self.comm)
                    .with_seed(self.config.seed)
                    .run(&inc.plan)
                {
                    if inc_report.makespan_us < report.makespan_us {
                        plan = inc.plan.clone();
                        report = inc_report;
                    }
                }
            }
        }
        let (pipeline, observed_op_us) = match self.pipelined_stats(graph, cluster, &plan)? {
            Some((stats, observed)) => (Some(stats), Some(observed)),
            None => (None, None),
        };

        // The final checkpoint records the finished job: full search
        // state for further warm-starts plus the fine plan with its
        // honest makespan. Unlike mid-run snapshots, a failure here is
        // surfaced — the user asked for a durable artifact and did not
        // get one.
        self.check_cancel()?;
        if let Some(ck) = &self.config.checkpoint {
            let mut final_ckpt =
                SearchCheckpoint::new(fingerprint.expect("fingerprint computed"), self.config.seed);
            final_ckpt.hybrid = outcome.hybrid_state.clone();
            final_ckpt.milp = outcome
                .milp_checkpoint
                .clone()
                .or_else(|| resume_state.as_ref().and_then(|l| l.milp.clone()));
            final_ckpt.incumbent = Some(CheckpointIncumbent {
                plan: plan.clone(),
                makespan_us: Some(report.makespan_us),
            });
            checkpoint::save_checkpoint(&ck.path, &final_ckpt)?;
        }

        pipe_span.set_attr("path", format!("{:?}", outcome.path));
        pipe_span.set_attr("degraded", degradation.is_some());
        Ok(PestoOutcome {
            plan,
            makespan_us: report.makespan_us,
            placement_time,
            coarse_op_count: coarse.op_count(),
            max_member_count: coarsening.max_member_count(),
            path: outcome.path,
            explicit_schedule,
            degradation,
            resumed,
            pipeline,
            observed_op_us,
            stage_timings,
            shard: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_models::ModelSpec;

    #[test]
    fn retryable_classification_is_shared_and_stable() {
        // Retryable: transient I/O and search-limit exhaustion.
        assert!(PestoError::Checkpoint(CheckpointError::Io("disk full".into())).is_retryable());
        assert!(PestoError::Solve(IlpError::NoSolution).is_retryable());
        // Permanent: bad inputs, proven infeasibility, wrong-job
        // checkpoints, cancellation.
        assert!(!PestoError::NoGpus.is_retryable());
        assert!(!PestoError::Cancelled.is_retryable());
        assert!(!PestoError::Graph(GraphError::Empty).is_retryable());
        assert!(!PestoError::Solve(IlpError::Infeasible).is_retryable());
        assert!(!PestoError::InvalidConfig("zero draws".into()).is_retryable());
        assert!(!PestoError::Repair("not a gpu".into()).is_retryable());
        assert!(
            !PestoError::Checkpoint(CheckpointError::Mismatch("other job".into())).is_retryable()
        );
        assert!(!PestoError::Checkpoint(CheckpointError::Parse("garbage".into())).is_retryable());
        assert!(!PestoError::Sim(SimError::OutOfMemory(Vec::new())).is_retryable());
    }

    #[test]
    fn pre_cancelled_place_returns_cancelled_not_a_degraded_plan() {
        let graph = ModelSpec::nasnet(2, 8).generate(16, 1);
        let cluster = Cluster::two_gpus();
        let token = CancelToken::new();
        token.cancel();
        let cfg = PestoConfig {
            cancel: Some(token),
            // A budget would normally trigger the degradation ladder;
            // cancellation must win over it.
            time_budget: Some(Duration::from_millis(1)),
            ..PestoConfig::fast()
        };
        let err = Pesto::new(cfg).place(&graph, &cluster).unwrap_err();
        assert_eq!(err, PestoError::Cancelled);
        assert!(!err.is_retryable());
    }

    #[test]
    fn cancel_mid_search_propagates_through_the_pipeline() {
        let graph = ModelSpec::nasnet(3, 16).generate(32, 1);
        let cluster = Cluster::two_gpus();
        let token = CancelToken::new();
        let mut cfg = PestoConfig::fast();
        // Raise the flag from the search's own checkpoint sink: the first
        // cadence snapshot fires early in the solve, deterministically
        // mid-search.
        cfg.cancel = Some(token.clone());
        cfg.placer.hybrid.checkpoint_every = 10;
        cfg.placer.hybrid.checkpoint_sink =
            Some(pesto_ilp::CheckpointSink::new(move |_| token.cancel()));
        let err = Pesto::new(cfg).place(&graph, &cluster).unwrap_err();
        assert_eq!(err, PestoError::Cancelled);
    }

    #[test]
    fn pipeline_runs_end_to_end_on_a_small_model() {
        let graph = ModelSpec::nasnet(3, 16).generate(32, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        assert!(outcome.makespan_us > 0.0);
        // Scale-aware floor: small graphs coarsen to at most max(200, n/4).
        assert!(outcome.coarse_op_count <= graph.op_count());
        assert!(outcome.plan.validate(&graph, &cluster).is_ok());
        assert_eq!(outcome.degradation, None, "no budget, no degradation");
    }

    #[test]
    fn cpu_only_cluster_is_a_typed_error_not_a_panic() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let full = Cluster::homogeneous(1, 1 << 34);
        let cpu_only = full.without_gpu(full.gpus()[0]).unwrap();
        let err = Pesto::new(PestoConfig::fast())
            .place(&graph, &cpu_only)
            .unwrap_err();
        assert_eq!(err, PestoError::NoGpus);
    }

    #[test]
    fn zero_budget_degrades_to_a_single_device() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            time_budget: Some(Duration::ZERO),
            ..PestoConfig::fast()
        };
        let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
        assert_eq!(outcome.path, SolvePath::SingleDevice);
        assert_eq!(
            outcome.degradation,
            Some(DegradationReason::BudgetExhausted)
        );
        assert!(outcome.plan.validate(&graph, &cluster).is_ok());
        // Everything sits on one GPU.
        let gpu0 = cluster.gpus()[0];
        for op in graph.op_ids() {
            let d = outcome.plan.placement.device(op);
            assert!(d == gpu0 || d == cluster.cpu());
        }
    }

    #[test]
    fn single_gpu_cluster_runs_end_to_end() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::homogeneous(1, 1 << 34);
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        assert!(outcome.makespan_us > 0.0);
        assert!(outcome.plan.validate(&graph, &cluster).is_ok());
    }

    #[test]
    fn scheduling_fallback_when_merges_are_huge() {
        let graph = ModelSpec::nasnet(3, 16).generate(32, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            max_members_for_scheduling: 1, // force the fallback
            coarsen_target: 16,
            ..PestoConfig::fast()
        };
        let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
        assert!(!outcome.explicit_schedule);
        assert!(outcome.plan.order.is_none());
    }

    #[test]
    fn pipeline_steps_config_yields_a_breakdown() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let base = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        assert!(base.pipeline.is_none(), "default config is single-step");

        let config = PestoConfig {
            pipeline_steps: 4,
            ..PestoConfig::fast()
        };
        let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
        let stats = outcome.pipeline.as_ref().expect("4-step breakdown");
        assert_eq!(stats.steps, 4);
        // The single-step makespan is unaffected by the extra evaluation,
        // and the sustained step time can never exceed it.
        assert_eq!(outcome.makespan_us, base.makespan_us);
        assert!(stats.steady_step_us <= outcome.makespan_us + 1e-9);
    }

    #[test]
    fn stage_timings_cover_every_stage_even_with_obs_disabled() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig::fast())
            .place(&graph, &cluster)
            .unwrap();
        let stages: Vec<&str> = outcome.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(
            stages,
            ["profile", "coarsen", "solve", "refine", "schedule", "simulate"],
            "full run visits every stage in order"
        );
        for t in &outcome.stage_timings {
            assert!(t.wall_us >= 0.0, "{}: negative wall time", t.stage);
        }
    }

    #[test]
    fn enabled_obs_records_pipeline_spans_and_metrics() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            obs: Obs::enabled(),
            ..PestoConfig::fast()
        };
        let obs = config.obs.clone();
        Pesto::new(config).place(&graph, &cluster).unwrap();

        let spans = obs.spans();
        for want in [
            "pesto.place",
            "pipeline.profile",
            "pipeline.coarsen",
            "pipeline.solve",
            "pipeline.refine",
            "pipeline.schedule",
            "pipeline.simulate",
        ] {
            assert!(spans.iter().any(|s| s.name == want), "missing span {want}");
        }
        // Coarsening and profiling quality metrics are recorded.
        assert!(
            obs.gauge("coarsen.ops_before").unwrap() >= obs.gauge("coarsen.ops_after").unwrap()
        );
        assert!(obs.gauge("profile.comm_r2.gpu_gpu").is_some());
        // The placer inherited the handle: the solver stack left evidence.
        assert!(spans.iter().any(|s| s.name == "placer.place"));
    }

    #[test]
    fn degradation_events_carry_tag_and_remaining_deadline() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            time_budget: Some(Duration::ZERO),
            obs: Obs::enabled(),
            ..PestoConfig::fast()
        };
        let obs = config.obs.clone();
        let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
        assert_eq!(
            outcome.degradation,
            Some(DegradationReason::BudgetExhausted)
        );
        // Degraded runs skip the search stages but still time what ran.
        let stages: Vec<&str> = outcome.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(stages, ["profile", "coarsen", "simulate"]);

        let events = obs.solver_events();
        let deg: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                SolverEventKind::Degradation {
                    reason,
                    remaining_deadline_us,
                } => Some((reason.clone(), *remaining_deadline_us)),
                _ => None,
            })
            .collect();
        assert_eq!(deg.len(), 1, "exactly one degradation event");
        assert_eq!(deg[0].0, "budget_exhausted");
        assert_eq!(deg[0].1, 0.0, "zero budget leaves zero deadline slack");
    }

    #[test]
    fn every_degradation_variant_emits_a_matching_event() {
        let config = PestoConfig {
            obs: Obs::enabled(),
            ..PestoConfig::fast()
        };
        let obs = config.obs.clone();
        let pesto = Pesto::new(config);
        let start = Instant::now();
        let reasons = [
            DegradationReason::DeadlineDuringSearch,
            DegradationReason::BudgetTooSmallForSearch,
            DegradationReason::BudgetExhausted,
            DegradationReason::SolverFailed("lp blew up".into()),
        ];
        for r in &reasons {
            pesto.emit_degradation(start, r);
        }
        let events = obs.solver_events();
        assert_eq!(events.len(), reasons.len());
        for (event, reason) in events.iter().zip(&reasons) {
            assert_eq!(event.source, "pipeline");
            match &event.kind {
                SolverEventKind::Degradation {
                    reason: tag,
                    remaining_deadline_us,
                } => {
                    assert_eq!(tag, reason.tag());
                    // No time_budget configured: infinite slack (exported
                    // as JSON null, never a bogus finite number).
                    assert!(remaining_deadline_us.is_infinite());
                }
                other => panic!("expected degradation event, got {other:?}"),
            }
        }
    }

    /// The offline stub `serde_json` serializes to `""` and cannot parse;
    /// resume paths need the real crate.
    fn serde_json_available() -> bool {
        serde_json::to_string(&1u8)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "pesto-pipeline-ckpt-{}-{name}.json",
            std::process::id()
        ))
    }

    #[test]
    fn checkpointed_run_writes_a_file_and_resume_never_regresses() {
        let path = ckpt_path("resume");
        let _ = std::fs::remove_file(&path);
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            checkpoint: Some(CheckpointConfig {
                every_iters: 50,
                ..CheckpointConfig::new(&path)
            }),
            ..PestoConfig::fast()
        };
        let a = Pesto::new(config.clone()).place(&graph, &cluster).unwrap();
        assert!(!a.resumed, "fresh run must not claim to have resumed");
        assert!(path.exists(), "final checkpoint must be written");

        if serde_json_available() {
            // Resuming a *finished* job replays every chain's terminal
            // state: the search adds nothing, and the never-worse guard
            // keeps the incumbent, so the makespan cannot regress.
            let resume_config = PestoConfig {
                checkpoint: Some(CheckpointConfig::resume(&path)),
                ..config
            };
            let b = Pesto::new(resume_config).place(&graph, &cluster).unwrap();
            assert!(b.resumed);
            assert!(
                b.makespan_us <= a.makespan_us + 1e-6,
                "resume regressed: {} > {}",
                b.makespan_us,
                a.makespan_us
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resuming_against_a_different_graph_is_a_typed_error() {
        if !serde_json_available() {
            return; // load path needs real serde_json
        }
        let path = ckpt_path("mismatch");
        let _ = std::fs::remove_file(&path);
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            checkpoint: Some(CheckpointConfig::new(&path)),
            ..PestoConfig::fast()
        };
        Pesto::new(config).place(&graph, &cluster).unwrap();

        let other = ModelSpec::transformer(1, 2, 128).generate(4, 1);
        let err = Pesto::new(PestoConfig {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            ..PestoConfig::fast()
        })
        .place(&other, &cluster)
        .unwrap_err();
        assert!(
            matches!(err, PestoError::Checkpoint(CheckpointError::Mismatch(_))),
            "got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_file_starts_fresh_not_an_error() {
        let path = ckpt_path("fresh");
        let _ = std::fs::remove_file(&path);
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let outcome = Pesto::new(PestoConfig {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            ..PestoConfig::fast()
        })
        .place(&graph, &cluster)
        .unwrap();
        assert!(!outcome.resumed, "nothing to resume from");
        assert!(path.exists(), "the fresh run still checkpoints");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profiling_can_be_disabled() {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let config = PestoConfig {
            profiler_iterations: None,
            ..PestoConfig::fast()
        };
        let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
        assert!(outcome.makespan_us > 0.0);
    }
}
