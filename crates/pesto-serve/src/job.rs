//! Job model: the durable spec a client submits, the in-memory record
//! the server tracks, and the terminal result that outlives a crash.
//!
//! ## Lifecycle
//!
//! ```text
//!            admission (bounded queue)
//! POST /jobs ──────────────► Queued ──► Running ──► Completed
//!      │ queue full                       │  ▲          Degraded(reason)
//!      ▼                                  │  │ retryable Failed(error)
//!   Rejected (429 + retry-after,          │  └──backoff──┘
//!   never enters the registry)            ▼
//!                                      Cancelled (DELETE /jobs/:id)
//! ```
//!
//! `Rejected` is an *admission* outcome: the client gets a typed 429 with
//! a retry-after hint and the job is never recorded. Every admitted job
//! reaches exactly one terminal state, which is durably written to
//! `result.json` in the job's directory so a crash cannot lose it.

use pesto::graph::FrozenGraph;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// What a client asked for, persisted verbatim at admission so a crashed
/// daemon can re-run the job identically. The graph is kept as its
/// serialized JSON (not re-encoded) so the fingerprint seen on recovery
/// is byte-for-byte the fingerprint seen at submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The placement graph, in `pesto::graph::to_json` format.
    pub graph_json: String,
    /// Pipeline seed (profiling noise, search stream, tie-breaks).
    pub seed: u64,
    /// Per-job SLA mapped onto [`pesto::PestoConfig::time_budget`]: the
    /// pipeline degrades exact → hybrid → mSCT → single-device instead
    /// of blowing the deadline. `None` runs to completion.
    pub sla_ms: Option<u64>,
    /// Hybrid-search checkpoint cadence in iterations; `0` disables
    /// periodic checkpointing (the job is then not crash-resumable).
    pub checkpoint_every: usize,
    /// Extra attempts granted to *retryable* failures (transient
    /// checkpoint I/O, stochastic `NoSolution`). Permanent errors never
    /// retry regardless.
    pub max_retries: u32,
    /// Annealing iterations per restart; `None` uses the quick default.
    pub iterations: Option<usize>,
    /// Independent annealing restarts; `None` uses the quick default.
    pub restarts: Option<usize>,
    /// Profiling iterations for op-time estimation. `None` trusts the
    /// graph's compute times as-is (and skips the shared profile cache).
    pub profiler_iterations: Option<usize>,
    /// Solver worker threads, mapped onto
    /// [`pesto::PestoConfig::solver_threads`]: `None` (and `1`) keep the
    /// deterministic serial solvers; larger values parallelize the LP
    /// kernels and the MILP branch-and-bound for this job.
    pub threads: Option<usize>,
    /// Hierarchical sharding: when set, graphs with more ops than this
    /// region cap take the sharded path ([`pesto::PestoConfig::shard`]),
    /// fanning region solves over the job's `threads` workers. `None`
    /// keeps the monolithic pipeline.
    #[serde(default)]
    pub shard_region_cap: Option<usize>,
    /// Chaos-testing hook: `"panic-solve"` makes the solve panic inside
    /// the worker's panic sandbox (the job must become a terminal
    /// `failed` record), `"panic-worker"` panics *outside* it (the worker
    /// thread dies and the supervisor must respawn it). Only the chaos
    /// suite sets this; any other value is rejected at admission.
    #[serde(default)]
    pub chaos: Option<String>,
}

/// The `chaos` values [`JobSpec::from_request_json`] accepts.
pub const CHAOS_MODES: &[&str] = &["panic-solve", "panic-worker"];

impl JobSpec {
    /// Parses a `POST /jobs` body. The only required field is `graph`;
    /// every knob has a service-appropriate default.
    pub fn from_request_json(body: &str) -> Result<JobSpec, String> {
        let v: Value =
            serde_json::from_str(body).map_err(|e| format!("body is not valid JSON: {e:?}"))?;
        let graph = v
            .get("graph")
            .ok_or_else(|| "missing required field \"graph\"".to_string())?;
        let graph_json =
            serde_json::to_string(graph).map_err(|e| format!("cannot re-encode graph: {e:?}"))?;
        // Validate the graph eagerly: a malformed graph must be a 400 at
        // admission, not a Failed job discovered minutes later.
        pesto::graph::from_json(&graph_json).map_err(|e| format!("invalid graph: {e}"))?;
        let get_u64 = |key: &str| v.get(key).and_then(Value::as_u64);
        let chaos = match v.get("chaos").and_then(Value::as_str) {
            Some(mode) if CHAOS_MODES.contains(&mode) => Some(mode.to_string()),
            Some(mode) => {
                return Err(format!(
                    "unknown chaos mode {mode:?} (expected one of {CHAOS_MODES:?})"
                ))
            }
            None => None,
        };
        Ok(JobSpec {
            graph_json,
            seed: get_u64("seed").unwrap_or(0xbe57),
            sla_ms: get_u64("sla_ms"),
            checkpoint_every: get_u64("checkpoint_every").unwrap_or(200) as usize,
            max_retries: get_u64("max_retries").unwrap_or(2) as u32,
            iterations: get_u64("iterations").map(|n| n as usize),
            restarts: get_u64("restarts").map(|n| n as usize),
            profiler_iterations: get_u64("profiler_iterations").map(|n| n as usize),
            threads: get_u64("threads").map(|n| (n as usize).max(1)),
            shard_region_cap: get_u64("shard_region_cap").map(|n| (n as usize).max(2)),
            chaos,
        })
    }

    /// Decodes the stored graph.
    pub fn graph(&self) -> Result<FrozenGraph, String> {
        pesto::graph::from_json(&self.graph_json).map_err(|e| format!("stored graph invalid: {e}"))
    }
}

/// Where a job is in its lifecycle. `Completed`, `Degraded`, `Failed`,
/// and `Cancelled` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is placing it (includes backoff waits between retries).
    Running,
    /// Finished with the full (non-degraded) search.
    Completed,
    /// Finished, but the SLA forced a cheaper rung of the degradation
    /// ladder; the reason rides along in the record.
    Degraded,
    /// A permanent error, or a retryable one that exhausted its retries.
    Failed,
    /// Cooperatively cancelled via `DELETE /jobs/:id`.
    Cancelled,
}

impl JobState {
    /// Stable machine-readable tag (`"queued"`, `"running"`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether this state ends the lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Degraded | JobState::Failed | JobState::Cancelled
        )
    }

    /// Parses a [`JobState::tag`] back (used when loading `result.json`).
    pub fn from_tag(tag: &str) -> Option<JobState> {
        Some(match tag {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "completed" => JobState::Completed,
            "degraded" => JobState::Degraded,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

/// The durable terminal record written (atomically) to the job
/// directory's `result.json` the moment a job leaves the running set.
/// Recovery treats its presence as "this job is done" — a crash between
/// finishing the search and writing this file re-runs the job, which is
/// safe because placement is deterministic and checkpoint-resumable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerminalRecord {
    /// Job id.
    pub id: String,
    /// Terminal [`JobState::tag`].
    pub state: String,
    /// Degradation reason tag, when `state == "degraded"`.
    pub degradation: Option<String>,
    /// Honest simulated per-step time of the final plan, µs.
    pub makespan_us: Option<f64>,
    /// Dense per-op device indices of the final placement — the
    /// bit-identity witness the kill/resume acceptance test compares.
    pub placement: Option<Vec<u32>>,
    /// Error message, when `state == "failed"`.
    pub error: Option<String>,
    /// Whether the error was classified retryable (it still failed if
    /// retries ran out).
    pub retryable: bool,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether any attempt warm-started from a crash checkpoint.
    pub resumed: bool,
    /// Wall-clock from admission to terminal state, milliseconds.
    pub duration_ms: u64,
    /// Whether the job's solve panicked (the panic was caught by the
    /// worker's sandbox, or the worker died and the supervisor settled
    /// the orphan). Always paired with `state == "failed"`.
    #[serde(default)]
    pub panicked: bool,
}
