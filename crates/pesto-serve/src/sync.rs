//! Poison-free synchronization primitives.
//!
//! `std`'s mutex poisoning turns one panic into a cascade: every later
//! `lock().unwrap()` on the same mutex panics too, so a single crashed
//! job could wedge `/jobs`, `/healthz`, and the worker queue forever.
//! The service's shared state holds only data that stays consistent
//! across a panic (a job registry entry is written atomically under the
//! lock; the queue holds plain ids), so the right policy here is to
//! *recover* the guard and keep serving — the panicking job itself is
//! handled by the supervision layer, not by refusing every future lock.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A mutex whose `lock` never panics: a poisoned lock (some thread
/// panicked while holding it) is recovered and handed out anyway.
#[derive(Debug, Default)]
pub struct RobustMutex<T>(Mutex<T>);

impl<T> RobustMutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> RobustMutex<T> {
        RobustMutex(Mutex::new(value))
    }

    /// Acquires the lock, recovering from poison instead of panicking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`] with the same poison-recovery policy as
/// [`RobustMutex::lock`]: a guard whose mutex was poisoned by another
/// thread's panic is recovered, not propagated.
pub fn wait_robust<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn a_panic_while_locked_does_not_wedge_later_lockers() {
        let m = Arc::new(RobustMutex::new(7u32));
        let inner = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = inner.lock();
            panic!("die while holding the lock");
        }));
        // A std Mutex would now be poisoned; RobustMutex recovers.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn condvar_wait_survives_a_poisoning_neighbor() {
        use std::time::Duration;
        let pair = Arc::new((RobustMutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut ready = m.lock();
                while !*ready {
                    ready = wait_robust(cv, ready);
                }
                true
            })
        };
        // Poison the mutex from a panicking thread, then signal anyway.
        let poisoner = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _guard = pair.0.lock();
                    panic!("poison it");
                }));
            })
        };
        poisoner.join().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(waiter.join().unwrap());
    }
}
