//! A minimal HTTP/1.1 layer over `std::net`, covering exactly what the
//! placement service needs: one request per connection (the server always
//! answers `Connection: close`), `Content-Length` bodies, and a blocking
//! client for the load generator and the integration tests. No chunked
//! encoding, no keep-alive, no TLS — by design, to stay inside the
//! repository's zero-heavy-deps envelope (tokio/hyper are not available
//! in the offline build).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body the server will read, in bytes. A serialized
/// placement graph for the biggest model in the repo is well under this;
/// anything larger is a malformed or hostile request and is rejected
/// with `413` before allocation.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Largest request head (request line + headers) the server will buffer,
/// in bytes. The service's real requests have tiny heads; an unbounded
/// header stream is a memory-exhaustion vector, so the reader is capped
/// with [`Read::take`] and anything longer is rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/jobs/job-3`.
    pub path: String,
    /// Decoded `k=v` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`, if any.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Errors surfaced while reading a request; each maps to a response
/// status so the connection handler can always answer something.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure (client went away mid-request).
    Io(io::Error),
    /// Unparseable request line or headers.
    Malformed(String),
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream`. Blocks until the head and the full
/// `Content-Length` body arrive (callers set a read timeout on the
/// socket so a stalled client cannot pin a handler thread forever).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    read_request_from(&mut BufReader::new(stream))
}

/// One line of the request head, as raw bytes from a capped reader.
/// `None` means clean EOF before any byte of this line.
fn read_head_line<R: BufRead>(
    head: &mut io::Take<&mut R>,
    buf: &mut Vec<u8>,
) -> Result<Option<()>, RequestError> {
    buf.clear();
    let n = head.read_until(b'\n', buf)?;
    if n == 0 {
        if head.limit() == 0 {
            return Err(RequestError::HeadTooLarge);
        }
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        // `read_until` stopped without its delimiter: either the head
        // budget ran out mid-line, or the peer closed mid-line.
        if head.limit() == 0 {
            return Err(RequestError::HeadTooLarge);
        }
        return Err(RequestError::Malformed("head truncated mid-line".into()));
    }
    Ok(Some(()))
}

/// Transport-agnostic request parser: the real server feeds it a
/// `BufReader<TcpStream>`, the hardening property tests feed it
/// in-memory cursors full of adversarial bytes. The contract either way:
/// any byte stream produces `Ok` or a typed [`RequestError`] — never a
/// panic, and never unbounded buffering (head capped by
/// [`MAX_HEAD_BYTES`], body by [`MAX_BODY_BYTES`] before allocation).
pub fn read_request_from<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let mut head = Read::take(&mut *reader, MAX_HEAD_BYTES as u64);
    let mut raw = Vec::new();

    if read_head_line(&mut head, &mut raw)?.is_none() {
        return Err(RequestError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before request line",
        )));
    }
    let line = std::str::from_utf8(&raw)
        .map_err(|_| RequestError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing path".into()))?
        .to_string();

    let mut content_length: Option<usize> = None;
    loop {
        if read_head_line(&mut head, &mut raw)?.is_none() {
            return Err(RequestError::Malformed("headers truncated".into()));
        }
        let header = std::str::from_utf8(&raw)
            .map_err(|_| RequestError::Malformed("header is not UTF-8".into()))?
            .trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad content-length".into()))?;
                // Smuggling-adjacent ambiguity: two different lengths for
                // one body is an attack or a broken client, not a choice
                // the server should make.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(RequestError::Malformed(
                        "conflicting content-length headers".into(),
                    ));
                }
                content_length = Some(parsed);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// A response ready to serialize. Always closes the connection.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A Prometheus text-format response (`text/plain; version=0.0.4`,
    /// the exposition format's content type).
    pub fn prometheus(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        stream.write_all(out.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A client-side view of a response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header name → value.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl ClientResponse {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking single-request client: connects, sends, reads the full
/// response. `timeout` bounds both connect-to-first-byte and the body
/// read, so a dead server turns into an error instead of a hang.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn request_roundtrips_through_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.query_value("events_since"), Some("7"));
            assert_eq!(req.body, b"{\"x\":1}");
            Response::json(202, "{\"ok\":true}")
                .with_header("Retry-After", "2")
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = client_request(
            &addr.to_string(),
            "POST",
            "/jobs?events_since=7",
            Some("{\"x\":1}"),
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.body, "{\"ok\":true}");
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream) {
                Err(RequestError::BodyTooLarge(n)) => assert!(n > MAX_BODY_BYTES),
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        server.join().unwrap();
    }

    /// Parses an in-memory byte stream the way the server parses a
    /// socket.
    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request_from(&mut io::Cursor::new(bytes))
    }

    #[test]
    fn oversized_head_is_rejected_with_a_typed_error() {
        // A single endless header line, well past the head cap.
        let mut raw = b"GET /jobs HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        raw.extend_from_slice(b"\r\n\r\n");
        match parse(&raw) {
            Err(RequestError::HeadTooLarge) => {}
            other => panic!("expected HeadTooLarge, got {other:?}"),
        }
        // Many small headers hit the same cap.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        let mut i = 0usize;
        while raw.len() <= MAX_HEAD_BYTES {
            raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
            i += 1;
        }
        raw.extend_from_slice(b"\r\n");
        match parse(&raw) {
            Err(RequestError::HeadTooLarge) => {}
            other => panic!("expected HeadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_content_lengths_are_malformed() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nabc";
        match parse(raw) {
            Err(RequestError::Malformed(msg)) => assert!(msg.contains("conflicting")),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // A *repeated identical* length is tolerated.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(parse(raw).unwrap().body, b"abc");
    }

    #[test]
    fn every_truncation_of_a_canonical_request_fails_cleanly() {
        let raw: &[u8] =
            b"POST /jobs?a=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"x\":1}";
        for cut in 0..raw.len() {
            match parse(&raw[..cut]) {
                Ok(req) => panic!("prefix of {cut} bytes parsed as {req:?}"),
                Err(RequestError::Io(_)) | Err(RequestError::Malformed(_)) => {}
                Err(other) => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
        let full = parse(raw).unwrap();
        assert_eq!(full.method, "POST");
        assert_eq!(full.path, "/jobs");
        assert_eq!(full.query_value("a"), Some("1"));
        assert_eq!(full.body, b"{\"x\":1}");
    }

    mod hardening_props {
        use super::*;
        use proptest::prelude::*;

        /// Wraps arbitrary bytes in just enough HTTP framing to reach the
        /// deeper parsing stages (headers, content-length, body).
        fn framed(head_noise: &[u8], claimed: usize, body: &[u8]) -> Vec<u8> {
            let mut raw = b"POST /jobs HTTP/1.1\r\n".to_vec();
            raw.extend_from_slice(head_noise);
            raw.extend_from_slice(format!("Content-Length: {claimed}\r\n\r\n").as_bytes());
            raw.extend_from_slice(body);
            raw
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The core contract: completely arbitrary bytes never panic
            /// the parser and never produce an over-limit body.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048usize)) {
                match parse(&bytes) {
                    Ok(req) => prop_assert!(req.body.len() <= MAX_BODY_BYTES),
                    Err(RequestError::Io(_))
                    | Err(RequestError::Malformed(_))
                    | Err(RequestError::BodyTooLarge(_))
                    | Err(RequestError::HeadTooLarge) => {}
                }
            }

            /// Arbitrary bytes *inside the head* of an otherwise plausible
            /// request also never panic; a clean CRLF-delimited UTF-8 head
            /// must reach the body stage.
            #[test]
            fn noisy_heads_never_panic(
                noise in proptest::collection::vec(any::<u8>(), 0..512usize),
                body in proptest::collection::vec(any::<u8>(), 0..256usize),
            ) {
                // Keep the injected noise line-shaped so it cannot
                // prematurely terminate the head with a bare CRLF.
                let mut line: Vec<u8> = noise
                    .into_iter()
                    .filter(|&b| b != b'\r' && b != b'\n')
                    .collect();
                if line.is_empty() {
                    line.extend_from_slice(b"X-Noise: 1");
                }
                line.extend_from_slice(b"\r\n");
                let raw = framed(&line, body.len(), &body);
                match parse(&raw) {
                    Ok(req) => prop_assert_eq!(req.body, body),
                    // Non-UTF-8 noise is a typed 400, never a crash.
                    Err(RequestError::Malformed(_)) => {}
                    Err(other) => {
                        return Err(TestCaseError::fail(format!("unexpected error {other:?}")));
                    }
                }
            }

            /// Content-Length larger than the delivered body is a typed
            /// EOF error; equal-or-smaller claims parse to exactly the
            /// claimed prefix.
            #[test]
            fn body_length_claims_are_honored(
                body in proptest::collection::vec(any::<u8>(), 0..512usize),
                slack in 0..64usize,
                shortfall in any::<bool>(),
            ) {
                if shortfall {
                    let claimed = body.len() + 1 + slack;
                    let raw = framed(b"", claimed, &body);
                    match parse(&raw) {
                        Err(RequestError::Io(e)) => {
                            prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "expected UnexpectedEof, got {other:?}"
                            )));
                        }
                    }
                } else {
                    let claimed = body.len().saturating_sub(slack);
                    let raw = framed(b"", claimed, &body);
                    let req = parse(&raw).unwrap();
                    prop_assert_eq!(req.body, body[..claimed].to_vec());
                }
            }
        }
    }
}
