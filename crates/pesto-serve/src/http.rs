//! A minimal HTTP/1.1 layer over `std::net`, covering exactly what the
//! placement service needs: one request per connection (the server always
//! answers `Connection: close`), `Content-Length` bodies, and a blocking
//! client for the load generator and the integration tests. No chunked
//! encoding, no keep-alive, no TLS — by design, to stay inside the
//! repository's zero-heavy-deps envelope (tokio/hyper are not available
//! in the offline build).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body the server will read, in bytes. A serialized
/// placement graph for the biggest model in the repo is well under this;
/// anything larger is a malformed or hostile request and is rejected
/// with `413` before allocation.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/jobs/job-3`.
    pub path: String,
    /// Decoded `k=v` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`, if any.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Errors surfaced while reading a request; each maps to a response
/// status so the connection handler can always answer something.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure (client went away mid-request).
    Io(io::Error),
    /// Unparseable request line or headers.
    Malformed(String),
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream`. Blocks until the head and the full
/// `Content-Length` body arrive (callers set a read timeout on the
/// socket so a stalled client cannot pin a handler thread forever).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(RequestError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before request line",
        )));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line missing path".into()))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(RequestError::Malformed("headers truncated".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad content-length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// A response ready to serialize. Always closes the connection.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A Prometheus text-format response (`text/plain; version=0.0.4`,
    /// the exposition format's content type).
    pub fn prometheus(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        stream.write_all(out.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A client-side view of a response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header name → value.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl ClientResponse {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking single-request client: connects, sends, reads the full
/// response. `timeout` bounds both connect-to-first-byte and the body
/// read, so a dead server turns into an error instead of a hang.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn request_roundtrips_through_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.query_value("events_since"), Some("7"));
            assert_eq!(req.body, b"{\"x\":1}");
            Response::json(202, "{\"ok\":true}")
                .with_header("Retry-After", "2")
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = client_request(
            &addr.to_string(),
            "POST",
            "/jobs?events_since=7",
            Some("{\"x\":1}"),
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.body, "{\"ok\":true}");
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream) {
                Err(RequestError::BodyTooLarge(n)) => assert!(n > MAX_BODY_BYTES),
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        server.join().unwrap();
    }
}
