//! # pesto-serve: placement as a fault-tolerant service
//!
//! The Pesto pipeline (profile → coarsen → solve → schedule) as a
//! long-running multi-tenant daemon instead of a one-shot CLI. The HTTP
//! surface is four routes:
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /jobs` | Admit a placement job (serialized graph + knobs); `429` + retry-after when the bounded queue is full |
//! | `GET /jobs/:id` | Status + incremental solver-progress events (`?events_since=<cursor>`) |
//! | `DELETE /jobs/:id` | Cooperative cancellation, threaded through the solvers' deadline checks |
//! | `GET /healthz` | Liveness + queue/worker/counter snapshot |
//!
//! The interesting part is the robustness envelope:
//!
//! * **Admission control** — the wait queue is bounded; overload is a
//!   typed rejection with a retry-after hint, not a timeout.
//! * **SLAs** — a job's `sla_ms` becomes [`pesto::PestoConfig::time_budget`],
//!   so an overloaded solve degrades exact → hybrid → mSCT →
//!   single-device instead of blowing its deadline.
//! * **Retry** — failures classified retryable by
//!   [`pesto::PestoError::is_retryable`] get exponential backoff with
//!   deterministic jitter; permanent ones fail fast.
//! * **Crash recovery** — specs and terminal results are durable, and
//!   running jobs checkpoint on a cadence; a restarted daemon re-verifies
//!   checkpoint fingerprints and resumes in-flight jobs bit-identically.
//!
//! The HTTP layer is hand-rolled over `std::net` (one request per
//! connection, `Content-Length` bodies only): the offline build has no
//! tokio/hyper, and the service's request shapes don't need them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
mod job;
mod server;
mod sync;

pub use job::{JobSpec, JobState, TerminalRecord, CHAOS_MODES};
pub use server::{submit_raw, wait_terminal, Server, ServerConfig};
