//! The `pesto-serve` daemon: binds the placement service and runs until
//! killed. All state worth keeping lives in `--data-dir`, so `kill -9`
//! followed by a restart is a supported (and tested) operation.

use pesto_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "pesto-serve: placement-as-a-service daemon\n\
     \n\
     USAGE:\n\
     \x20   pesto-serve [--addr HOST:PORT] [--data-dir DIR] [--workers N]\n\
     \x20               [--queue-cap N] [--gpus N] [--keep-generations N]\n\
     \x20               [--read-timeout-ms MS] [--restart-budget N]\n\
     \n\
     OPTIONS:\n\
     \x20   --addr HOST:PORT       bind address (default 127.0.0.1:7437; port 0 = ephemeral)\n\
     \x20   --data-dir DIR         durable job state root (default pesto-serve-data)\n\
     \x20   --workers N            concurrent placement workers (default 4)\n\
     \x20   --queue-cap N          admission queue bound (default 256)\n\
     \x20   --gpus N               GPUs in the placement cluster (default 2)\n\
     \x20   --keep-generations N   checkpoint generations kept per job (default 2)\n\
     \x20   --read-timeout-ms MS   per-connection socket read/write timeout (default 30000)\n\
     \x20   --restart-budget N     crashed-worker respawns allowed per slot (default 8)\n\
     \n\
     The bound address is printed on stdout and written to\n\
     <data-dir>/serve.addr for supervisors that start with port 0.\n"
}

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
        None => Ok(None),
    }
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v.parse().map_err(|_| format!("bad {name} value {v}")),
        None => Ok(default),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return Ok(());
    }
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7437".to_string()),
        data_dir: flag_value(args, "--data-dir")?
            .map(PathBuf::from)
            .unwrap_or(defaults.data_dir),
        workers: parse(args, "--workers", defaults.workers)?,
        queue_capacity: parse(args, "--queue-cap", defaults.queue_capacity)?,
        gpus: parse(args, "--gpus", defaults.gpus)?,
        keep_generations: parse(args, "--keep-generations", defaults.keep_generations)?,
        read_timeout: Duration::from_millis(parse(
            args,
            "--read-timeout-ms",
            defaults.read_timeout.as_millis() as u64,
        )?),
        worker_restart_budget: parse(args, "--restart-budget", defaults.worker_restart_budget)?,
        ..defaults
    };
    let server = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("pesto-serve listening on {}", server.addr());
    // The daemon runs until killed; the acceptor and workers own all the
    // work. Park the main thread instead of joining so a SIGKILL test
    // sees a single process to kill.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
