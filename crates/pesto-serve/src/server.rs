//! The placement service: admission control, a bounded worker pool,
//! durable job state, cooperative cancellation, retry with backoff, and
//! crash recovery.
//!
//! ## Durability layout
//!
//! Every admitted job owns a directory under the data dir:
//!
//! ```text
//! <data_dir>/<job_id>/spec.json          job spec, written at admission
//! <data_dir>/<job_id>/search.gen-<A>.json  checkpoint of attempt A
//! <data_dir>/<job_id>/result.json        terminal record, written once
//! ```
//!
//! `spec.json` without `result.json` means the job was in flight when
//! the daemon died: startup re-enqueues it, and attempt `A` (recovered
//! from the newest checkpoint generation) resumes from its own
//! checkpoint bit-identically. Checkpoint generations are pruned on
//! startup and after every terminal write ([`pesto::prune`]), so a
//! long-lived data dir cannot accumulate superseded state or orphaned
//! `*.tmp` files. All durable writes and checkpoint reads go through the
//! configured [`Storage`] so the chaos suite can inject disk faults;
//! corrupt checkpoint generations are quarantined and recovery falls
//! back to the newest *valid* one ([`pesto::latest_valid_generation_with`]).
//!
//! ## Failure domains
//!
//! A panicking solve is confined to its job: the worker runs each solve
//! inside `catch_unwind`, turning a panic into a terminal
//! `failed` record with `panicked: true`. If a worker thread dies anyway
//! (a panic outside the sandbox), the supervisor thread settles the
//! orphaned job and respawns the worker within a bounded restart budget.
//! Shared state lives behind poison-recovering locks
//! ([`crate::sync::RobustMutex`]), so one panic can never wedge the
//! control plane.

use crate::http::{client_request, read_request, ClientResponse, Request, RequestError, Response};
use crate::job::{JobSpec, JobState, TerminalRecord};
use crate::sync::{wait_robust, RobustMutex};
use pesto::cost::Profiler;
use pesto::graph::{Cluster, FrozenGraph};
use pesto::obs::{Obs, SolverEvent, SolverEventKind};
use pesto::{
    generation_path, graph_fingerprint, latest_generation, latest_valid_generation_with,
    prune_with, CancelToken, CheckpointConfig, CheckpointError, Pesto, PestoConfig, PestoError,
    PruneReport, SearchCheckpoint, Storage,
};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (tests).
    pub addr: String,
    /// Placement worker threads (concurrent jobs).
    pub workers: usize,
    /// Admission bound: jobs allowed to *wait*. Submissions beyond it
    /// are rejected with `429` and a retry-after hint.
    pub queue_capacity: usize,
    /// Root of the durable per-job state.
    pub data_dir: PathBuf,
    /// Checkpoint generations kept per job after a terminal write.
    pub keep_generations: usize,
    /// GPUs of the service's placement cluster.
    pub gpus: usize,
    /// GPU memory, bytes, for the placement cluster.
    pub gpu_memory_bytes: u64,
    /// Per-job telemetry ring capacity ([`Obs::enabled_with_event_capacity`]).
    pub event_capacity: usize,
    /// First retry backoff; attempt `k` waits `base * 2^k` plus jitter.
    pub retry_base: Duration,
    /// Upper bound on a single backoff wait.
    pub retry_cap: Duration,
    /// Per-connection socket read/write timeout: a stalled client is cut
    /// off after this long instead of pinning a connection thread.
    pub read_timeout: Duration,
    /// How many times the supervisor will respawn each worker slot after
    /// a crash before declaring the slot dead.
    pub worker_restart_budget: u32,
    /// Base supervisor backoff before respawning a crashed worker;
    /// doubles per consecutive restart of the same slot (capped at 1 s).
    pub worker_restart_backoff: Duration,
    /// Durable-storage implementation for specs, terminal results, and
    /// checkpoint verification reads. Production keeps the default
    /// [`pesto::FsStorage`]; the chaos suite threads a seeded
    /// [`pesto::ChaosStorage`] through here.
    pub storage: Arc<dyn Storage>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 256,
            data_dir: PathBuf::from("pesto-serve-data"),
            keep_generations: 2,
            gpus: 2,
            gpu_memory_bytes: 16 * 1024 * 1024 * 1024,
            event_capacity: 4096,
            retry_base: Duration::from_millis(100),
            retry_cap: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            worker_restart_budget: 8,
            worker_restart_backoff: Duration::from_millis(25),
            storage: Arc::new(pesto::FsStorage),
        }
    }
}

/// In-memory view of one admitted job.
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
    resumed: bool,
    degradation: Option<String>,
    makespan_us: Option<f64>,
    error: Option<String>,
    retryable: bool,
    submitted: Instant,
    duration_ms: Option<u64>,
    cancel: CancelToken,
    obs: Obs,
    panicked: bool,
}

/// Every monotonic counter the service maintains, pre-registered at
/// startup so `/metrics` always exposes the full family set (a scrape
/// before the first job must not look like a missing metric).
const SERVE_COUNTERS: &[&str] = &[
    "serve.jobs.submitted",
    "serve.jobs.rejected",
    "serve.jobs.completed",
    "serve.jobs.degraded",
    "serve.jobs.failed",
    "serve.jobs.cancelled",
    "serve.jobs.retries",
    "serve.jobs.recovered",
    "serve.profile_cache.hits",
    "serve.profile_cache.misses",
    "serve.checkpoints.pruned_generations",
    "serve.checkpoints.pruned_tmp",
    "serve.jobs.panicked",
    "serve.worker_restarts",
    "serve.checkpoints.quarantined",
    "serve.storage.faults_injected",
];

struct ServerState {
    config: ServerConfig,
    cluster: Cluster,
    jobs: RobustMutex<HashMap<String, JobEntry>>,
    queue: RobustMutex<VecDeque<String>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    /// The service-wide telemetry sink: every job counter, the latency
    /// histogram, point-in-time gauges, per-job `serve.job` spans, and
    /// the flight recorder. `/healthz` and `/metrics` both read this
    /// registry, so the two views cannot drift apart. (Per-job solver
    /// telemetry stays on each job's own `JobEntry::obs` ring.)
    obs: Obs,
    /// EWMA of terminal job duration, milliseconds (drives retry-after).
    /// Kept atomic because the update is a read-modify-write; mirrored
    /// into the `serve.avg_job_ms` gauge at every scrape.
    avg_job_ms: AtomicU64,
    /// `(graph fingerprint, seed, iterations)` → profiled graph, shared
    /// across jobs so concurrent submissions of the same model profile
    /// once.
    profile_cache: RobustMutex<HashMap<(u64, u64, usize), Arc<FrozenGraph>>>,
    /// One slot per worker: the id of the job that worker is currently
    /// running, if any. A worker registers the id before `run_job` and
    /// clears it after; if the thread dies mid-job, the supervisor reads
    /// the slot to settle the orphaned job.
    worker_slots: Vec<RobustMutex<Option<String>>>,
    /// Worker threads currently alive (spawned minus dead); exposed as
    /// the `serve.workers_alive` gauge.
    workers_alive: AtomicUsize,
    /// The storage fault total already folded into the
    /// `serve.storage.faults_injected` counter; each gauge refresh adds
    /// the delta so the counter stays monotonic.
    storage_faults_reported: AtomicU64,
}

/// A running service instance. Dropping it does *not* stop the daemon;
/// call [`Server::stop`] for an orderly shutdown (tests) or just
/// SIGKILL the process (the crash-recovery path owns that case).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the service: recovers durable jobs from `data_dir`, spawns
    /// the worker pool, binds the listener, and begins accepting.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        fs::create_dir_all(&config.data_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cluster = Cluster::homogeneous(config.gpus.max(1), config.gpu_memory_bytes);
        let obs = Obs::enabled_with_event_capacity(config.event_capacity);
        for name in SERVE_COUNTERS {
            obs.counter_add(name, 0);
        }
        obs.name_lane("serve-main");
        // Postmortem telemetry: a panic anywhere in the process dumps the
        // flight recorder next to the durable job state.
        obs.install_panic_hook(config.data_dir.join("flight.json"));
        let worker_count = config.workers.max(1);
        let state = Arc::new(ServerState {
            cluster,
            jobs: RobustMutex::new(HashMap::new()),
            queue: RobustMutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            obs,
            avg_job_ms: AtomicU64::new(0),
            profile_cache: RobustMutex::new(HashMap::new()),
            worker_slots: (0..worker_count).map(|_| RobustMutex::new(None)).collect(),
            workers_alive: AtomicUsize::new(0),
            storage_faults_reported: AtomicU64::new(0),
            config,
        });

        recover_jobs(&state)?;

        // The bound address is written into the data dir so an external
        // supervisor (or the kill/restart integration test) can find a
        // daemon started with port 0.
        fs::write(state.config.data_dir.join("serve.addr"), addr.to_string())?;

        let workers: Vec<JoinHandle<()>> =
            (0..worker_count).map(|i| spawn_worker(&state, i)).collect();

        let supervisor_state = Arc::clone(&state);
        let supervisor = thread::Builder::new()
            .name("pesto-serve-supervisor".to_string())
            .spawn(move || supervise_workers(&supervisor_state, workers))
            .expect("spawn supervisor");

        let accept_state = Arc::clone(&state);
        let accept_thread = thread::Builder::new()
            .name("pesto-serve-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_state))
            .expect("spawn acceptor");

        Ok(Server {
            state,
            addr,
            accept_thread: Some(accept_thread),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Orderly shutdown: stop accepting, let workers finish their
    /// current job, leave still-queued jobs durable on disk (they
    /// recover on the next start, exactly like a crash).
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.queue_cv.notify_all();
        // Unblock the acceptor with one throwaway connection.
        let _ = client_request(
            &self.addr.to_string(),
            "GET",
            "/healthz",
            None,
            Duration::from_millis(500),
        );
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The supervisor joins the live workers before exiting.
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------
// Worker supervision

fn spawn_worker(state: &Arc<ServerState>, slot: usize) -> JoinHandle<()> {
    state.workers_alive.fetch_add(1, Ordering::Relaxed);
    let state = Arc::clone(state);
    thread::Builder::new()
        .name(format!("pesto-serve-worker-{slot}"))
        .spawn(move || worker_loop(&state, slot))
        .expect("spawn worker")
}

/// The supervisor: watches each worker slot, and when a worker thread
/// dies outside an orderly shutdown, (1) settles the job the dead worker
/// was running — the slot registry says which — as a terminal
/// `failed`/`panicked` record, and (2) respawns the slot after a doubling
/// backoff, up to `worker_restart_budget` restarts per slot. A slot that
/// exhausts its budget stays dead (visible in the `workers_alive` gauge);
/// the rest of the pool keeps serving.
fn supervise_workers(state: &Arc<ServerState>, mut workers: Vec<JoinHandle<()>>) {
    let mut restarts = vec![0u32; workers.len()];
    let mut handles: Vec<Option<JoinHandle<()>>> = workers.drain(..).map(Some).collect();
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            for handle in handles.iter_mut().filter_map(Option::take) {
                let _ = handle.join();
                state.workers_alive.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
        for slot in 0..handles.len() {
            let finished = handles[slot].as_ref().is_some_and(|h| h.is_finished());
            if !finished {
                continue;
            }
            let handle = handles[slot].take().expect("checked above");
            let _ = handle.join();
            state.workers_alive.fetch_sub(1, Ordering::Relaxed);
            if state.shutdown.load(Ordering::Acquire) {
                continue; // orderly exit, not a crash
            }
            // Settle the orphan: the worker died mid-job, so the job
            // would otherwise stay "running" forever.
            let orphan = state.worker_slots[slot].lock().take();
            if let Some(id) = orphan {
                state.obs.counter_add("serve.jobs.panicked", 1);
                finalize(state, &id, JobState::Failed, |j| {
                    j.error = Some("worker thread panicked outside the solve sandbox".to_string());
                    j.retryable = false;
                    j.panicked = true;
                });
                write_terminal(state, &id, JobState::Failed, None);
            }
            if restarts[slot] >= state.config.worker_restart_budget {
                continue; // budget exhausted; slot stays dead
            }
            let backoff = state
                .config
                .worker_restart_backoff
                .saturating_mul(1u32 << restarts[slot].min(10))
                .min(Duration::from_secs(1));
            thread::sleep(backoff);
            restarts[slot] += 1;
            state.obs.counter_add("serve.worker_restarts", 1);
            handles[slot] = Some(spawn_worker(state, slot));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------
// Recovery

/// Scans the data dir: prunes stale checkpoint state, re-registers every
/// job with a durable spec, re-enqueues the unfinished ones. A finished
/// job (`result.json` present) is loaded read-only so `GET /jobs/:id`
/// keeps answering across restarts.
fn recover_jobs(state: &Arc<ServerState>) -> io::Result<()> {
    let mut recovered = Vec::new();
    for entry in fs::read_dir(&state.config.data_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let dir = entry.path();
        // Startup GC: superseded generations and orphaned *.tmp files
        // from a crash mid-rename.
        if let Ok(report) = prune_with(&*state.config.storage, &dir, state.config.keep_generations)
        {
            record_prune(&state.obs, &report);
        }
        let spec_path = dir.join("spec.json");
        let Ok(spec_bytes) = state.config.storage.read(&spec_path) else {
            continue;
        };
        let spec_text = String::from_utf8_lossy(&spec_bytes).into_owned();
        let Ok(spec) = serde_json::from_str::<JobSpec>(&spec_text) else {
            continue;
        };
        let id = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
            // Keep ids monotonic across restarts.
            let next = state.next_id.load(Ordering::Relaxed).max(n + 1);
            state.next_id.store(next, Ordering::Relaxed);
        }

        let mut entry_rec = JobEntry {
            spec,
            state: JobState::Queued,
            attempts: 0,
            resumed: false,
            degradation: None,
            makespan_us: None,
            error: None,
            retryable: false,
            submitted: Instant::now(),
            duration_ms: None,
            cancel: CancelToken::new(),
            obs: Obs::enabled_with_event_capacity(state.config.event_capacity),
            panicked: false,
        };

        if let Ok(result_bytes) = state.config.storage.read(&dir.join("result.json")) {
            let result_text = String::from_utf8_lossy(&result_bytes);
            if let Ok(rec) = serde_json::from_str::<TerminalRecord>(&result_text) {
                if let Some(s) = JobState::from_tag(&rec.state) {
                    entry_rec.state = s;
                    entry_rec.attempts = rec.attempts;
                    entry_rec.resumed = rec.resumed;
                    entry_rec.degradation = rec.degradation;
                    entry_rec.makespan_us = rec.makespan_us;
                    entry_rec.error = rec.error;
                    entry_rec.retryable = rec.retryable;
                    entry_rec.duration_ms = Some(rec.duration_ms);
                    entry_rec.panicked = rec.panicked;
                    state.jobs.lock().insert(id, entry_rec);
                    continue;
                }
            }
        }

        // Unfinished: this job was queued or mid-search when the daemon
        // died. Its checkpoint (if any) is re-verified against the spec
        // before the worker is allowed to warm-start from it.
        entry_rec.resumed = verify_checkpoint_with_fallback(&dir, &entry_rec.spec, state);
        state.obs.counter_add("serve.jobs.recovered", 1);
        state.jobs.lock().insert(id.clone(), entry_rec);
        recovered.push(id);
    }
    recovered.sort();
    let mut queue = state.queue.lock();
    queue.extend(recovered);
    drop(queue);
    state.queue_cv.notify_all();
    Ok(())
}

/// Finds the newest checkpoint generation that loads, passes its
/// checksum, and verifies against the fingerprint and per-attempt seed
/// the spec would produce. Generations that fail — torn, bit-flipped,
/// wrong job — are moved to the job's `quarantine/` subdirectory
/// (counted on `serve.checkpoints.quarantined`) and the walk falls back
/// to the next-older generation, so one corrupt file costs a few
/// checkpoint cadences of progress instead of the whole search state.
/// Returns whether any valid checkpoint is available to resume from.
fn verify_checkpoint_with_fallback(dir: &Path, spec: &JobSpec, state: &Arc<ServerState>) -> bool {
    let expected = match placement_graph(state, spec) {
        Ok(g) => graph_fingerprint(&g),
        Err(_) => return false,
    };
    let validate = |generation: u64, ckpt: &SearchCheckpoint| -> Result<(), CheckpointError> {
        ckpt.verify(expected, attempt_seed(spec, generation as u32))
    };
    let Ok(scan) = latest_valid_generation_with(&*state.config.storage, dir, "search", &validate)
    else {
        return false;
    };
    if !scan.quarantined.is_empty() {
        state.obs.counter_add(
            "serve.checkpoints.quarantined",
            scan.quarantined.len() as u64,
        );
    }
    scan.valid.is_some()
}

// ---------------------------------------------------------------------
// Accept / routing

fn accept_loop(listener: TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        // One short-lived thread per connection: requests are small and
        // close immediately, so the thread count tracks in-flight
        // requests, not total traffic.
        let _ = thread::Builder::new()
            .name("pesto-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.read_timeout));
    let response = match read_request(&mut stream) {
        Ok(req) => route(&req, state),
        Err(RequestError::BodyTooLarge(n)) => Response::json(
            413,
            format!("{{\"error\":\"body of {n} bytes exceeds the limit\"}}"),
        ),
        Err(RequestError::Malformed(msg)) => {
            Response::json(400, format!("{{\"error\":{}}}", json_string(&msg)))
        }
        Err(RequestError::HeadTooLarge) => Response::json(
            431,
            "{\"error\":\"request head exceeds the 64 KiB limit\"}".to_string(),
        ),
        Err(RequestError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream);
}

fn route(req: &Request, state: &Arc<ServerState>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/debug/flight") => debug_flight(state),
        ("POST", "/jobs") => submit(req, state),
        ("GET", "/jobs") => list_jobs(state),
        (method, path) => {
            if let Some(id) = path.strip_prefix("/jobs/") {
                match method {
                    "GET" => job_status(id, req, state),
                    "DELETE" => cancel_job(id, state),
                    _ => Response::json(405, "{\"error\":\"method not allowed\"}"),
                }
            } else {
                Response::json(404, "{\"error\":\"no such route\"}")
            }
        }
    }
}

/// Refreshes the point-in-time gauges shared by `/healthz` and
/// `/metrics` (queue depth, running/total jobs, static capacity facts,
/// the retry-after EWMA, and the solver-event drop count aggregated
/// across the server handle and every per-job ring), then returns
/// `(queued, running, total, dropped)`. Both endpoints call this before
/// rendering, so they always agree on the live numbers.
fn refresh_gauges(state: &Arc<ServerState>) -> (usize, usize, usize, u64) {
    let queued = state.queue.lock().len();
    let jobs = state.jobs.lock();
    let running = jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .count();
    let total = jobs.len();
    let dropped =
        state.obs.dropped_events() + jobs.values().map(|j| j.obs.dropped_events()).sum::<u64>();
    drop(jobs);
    let obs = &state.obs;
    obs.gauge_set("serve.queue_depth", queued as f64);
    obs.gauge_set("serve.jobs_running", running as f64);
    obs.gauge_set("serve.jobs_total", total as f64);
    obs.gauge_set("serve.workers", state.config.workers as f64);
    obs.gauge_set("serve.queue_capacity", state.config.queue_capacity as f64);
    obs.gauge_set(
        "serve.avg_job_ms",
        state.avg_job_ms.load(Ordering::Relaxed) as f64,
    );
    obs.gauge_set("serve.solver_events_dropped", dropped as f64);
    obs.gauge_set(
        "serve.workers_alive",
        state.workers_alive.load(Ordering::Relaxed) as f64,
    );
    // Fold newly injected storage faults (chaos builds only; 0 in
    // production) into the monotonic counter.
    let faults = state.config.storage.faults_injected();
    let reported = state
        .storage_faults_reported
        .swap(faults, Ordering::Relaxed);
    if faults > reported {
        obs.counter_add("serve.storage.faults_injected", faults - reported);
    }
    (queued, running, total, dropped)
}

/// Folds a [`PruneReport`] into the checkpoint-GC counters, so rotation
/// work (and tmp-file sweeps after crashes) is visible instead of silent.
fn record_prune(obs: &Obs, report: &PruneReport) {
    obs.counter_add(
        "serve.checkpoints.pruned_generations",
        report.removed_generations as u64,
    );
    obs.counter_add("serve.checkpoints.pruned_tmp", report.removed_tmp as u64);
}

fn healthz(state: &Arc<ServerState>) -> Response {
    let (queued, running, total, dropped) = refresh_gauges(state);
    let c = |name: &str| state.obs.counter(name);
    let body = format!(
        "{{\"status\":\"ok\",\"queued\":{queued},\"running\":{running},\"jobs\":{total},\
         \"workers\":{},\"queue_capacity\":{},\"submitted\":{},\"rejected\":{},\
         \"completed\":{},\"degraded\":{},\"failed\":{},\"cancelled\":{},\"retries\":{},\
         \"recovered\":{},\"profile_cache_hits\":{},\"profile_cache_misses\":{},\
         \"avg_job_ms\":{},\"events_dropped\":{dropped},\"pruned_generations\":{},\
         \"pruned_tmp\":{},\"panicked\":{},\"worker_restarts\":{},\
         \"workers_alive\":{},\"checkpoints_quarantined\":{},\
         \"storage_faults_injected\":{}}}",
        state.config.workers,
        state.config.queue_capacity,
        c("serve.jobs.submitted"),
        c("serve.jobs.rejected"),
        c("serve.jobs.completed"),
        c("serve.jobs.degraded"),
        c("serve.jobs.failed"),
        c("serve.jobs.cancelled"),
        c("serve.jobs.retries"),
        c("serve.jobs.recovered"),
        c("serve.profile_cache.hits"),
        c("serve.profile_cache.misses"),
        state.avg_job_ms.load(Ordering::Relaxed),
        c("serve.checkpoints.pruned_generations"),
        c("serve.checkpoints.pruned_tmp"),
        c("serve.jobs.panicked"),
        c("serve.worker_restarts"),
        state.workers_alive.load(Ordering::Relaxed),
        c("serve.checkpoints.quarantined"),
        c("serve.storage.faults_injected"),
    );
    Response::json(200, body)
}

/// Prometheus text-format exposition of the service registry. Reads the
/// same `Obs` registry as `/healthz` (after the same gauge refresh), so
/// scraped counters always match the health view. Each scrape also
/// records a flight-recorder metric snapshot, giving postmortem dumps a
/// scrape-rate metric history for free.
fn metrics(state: &Arc<ServerState>) -> Response {
    refresh_gauges(state);
    state.obs.record_flight_snapshot();
    Response::prometheus(200, state.obs.prometheus_text())
}

/// The flight recorder, on demand: recent `serve.job` spans, solver
/// events, the metric-snapshot ring, and current metric state.
fn debug_flight(state: &Arc<ServerState>) -> Response {
    refresh_gauges(state);
    state.obs.record_flight_snapshot();
    Response::json(200, state.obs.flight_dump())
}

fn submit(req: &Request, state: &Arc<ServerState>) -> Response {
    let body = String::from_utf8_lossy(&req.body);
    let spec = match JobSpec::from_request_json(&body) {
        Ok(s) => s,
        Err(msg) => return Response::json(400, format!("{{\"error\":{}}}", json_string(&msg))),
    };

    // Admission control: the queue is the only unbounded resource a
    // client could grow, so it is the thing we bound. Rejection is
    // typed — a 429 with both a Retry-After header (seconds) and a
    // machine-readable retry_after_ms — and the job leaves no state.
    {
        let queue = state.queue.lock();
        if queue.len() >= state.config.queue_capacity {
            let hint_ms = retry_after_hint_ms(state, queue.len(), spec.sla_ms);
            state.obs.counter_add("serve.jobs.rejected", 1);
            return Response::json(
                429,
                format!(
                    "{{\"error\":\"queue full\",\"queued\":{},\"retry_after_ms\":{hint_ms}}}",
                    queue.len()
                ),
            )
            .with_header("Retry-After", hint_ms.div_ceil(1000).max(1).to_string());
        }
    }

    let id = format!("job-{}", state.next_id.fetch_add(1, Ordering::Relaxed));
    let dir = state.config.data_dir.join(&id);
    let storage = &state.config.storage;
    if let Err(e) = storage.create_dir_all(&dir).and_then(|_| {
        let text = serde_json::to_string(&spec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        storage.write_atomic(&dir.join("spec.json"), text.as_bytes())
    }) {
        // The job is NOT admitted: it has no registry entry, no queue
        // slot, and (at worst) a partial spec that recovery ignores. The
        // client owns the retry.
        return Response::json(
            500,
            format!(
                "{{\"error\":{}}}",
                json_string(&format!("cannot persist job spec: {e}"))
            ),
        );
    }

    let entry = JobEntry {
        spec,
        state: JobState::Queued,
        attempts: 0,
        resumed: false,
        degradation: None,
        makespan_us: None,
        error: None,
        retryable: false,
        submitted: Instant::now(),
        duration_ms: None,
        cancel: CancelToken::new(),
        obs: Obs::enabled_with_event_capacity(state.config.event_capacity),
        panicked: false,
    };
    state.jobs.lock().insert(id.clone(), entry);
    state.queue.lock().push_back(id.clone());
    state.queue_cv.notify_one();
    state.obs.counter_add("serve.jobs.submitted", 1);
    Response::json(
        202,
        format!("{{\"id\":{},\"state\":\"queued\"}}", json_string(&id)),
    )
}

/// How long a rejected client should wait: enough for the backlog ahead
/// of it to drain at the observed service rate, clamped to the job's own
/// SLA when it has one.
fn retry_after_hint_ms(state: &Arc<ServerState>, queue_len: usize, sla_ms: Option<u64>) -> u64 {
    retry_hint_from(
        state.avg_job_ms.load(Ordering::Relaxed),
        state.config.workers,
        queue_len,
        sla_ms,
    )
}

/// The pure hint computation behind [`retry_after_hint_ms`].
///
/// A client with a deadline cannot usefully wait longer than its own SLA:
/// a retry after that would blow the job's time budget the moment it was
/// admitted. Clamping the drain estimate to `sla_ms` keeps the hint
/// actionable — retry while the job can still meet its SLA, or give up
/// immediately — instead of reporting a backlog estimate the deadline
/// makes irrelevant.
fn retry_hint_from(avg_job_ms: u64, workers: usize, queue_len: usize, sla_ms: Option<u64>) -> u64 {
    let avg = avg_job_ms.max(50);
    let workers = workers.max(1) as u64;
    let drain = (avg * (queue_len as u64 + 1)).div_ceil(workers).max(100);
    match sla_ms {
        Some(sla) => drain.min(sla.max(1)),
        None => drain,
    }
}

fn list_jobs(state: &Arc<ServerState>) -> Response {
    let jobs = state.jobs.lock();
    let mut ids: Vec<&String> = jobs.keys().collect();
    ids.sort();
    let items: Vec<String> = ids
        .iter()
        .map(|id| {
            let j = &jobs[*id];
            format!(
                "{{\"id\":{},\"state\":\"{}\"}}",
                json_string(id),
                j.state.tag()
            )
        })
        .collect();
    Response::json(200, format!("{{\"jobs\":[{}]}}", items.join(",")))
}

fn job_status(id: &str, req: &Request, state: &Arc<ServerState>) -> Response {
    let events_since: u64 = req
        .query_value("events_since")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let (summary, obs) = {
        let jobs = state.jobs.lock();
        let Some(j) = jobs.get(id) else {
            return Response::json(404, "{\"error\":\"no such job\"}");
        };
        (job_summary_json(id, j), j.obs.clone())
    };
    let (next, events) = obs.solver_events_since(events_since);
    let dropped = obs.dropped_events();
    let events_json: Vec<String> = events.iter().map(event_json).collect();
    Response::json(
        200,
        format!(
            "{{{summary},\"events_next\":{next},\"events_dropped\":{dropped},\"events\":[{}]}}",
            events_json.join(",")
        ),
    )
}

fn job_summary_json(id: &str, j: &JobEntry) -> String {
    let mut out = format!(
        "\"id\":{},\"state\":\"{}\",\"attempts\":{},\"resumed\":{}",
        json_string(id),
        j.state.tag(),
        j.attempts,
        j.resumed
    );
    if let Some(ms) = &j.makespan_us {
        out.push_str(&format!(",\"makespan_us\":{ms}"));
    }
    if let Some(d) = &j.degradation {
        out.push_str(&format!(",\"degradation\":{}", json_string(d)));
    }
    if let Some(e) = &j.error {
        out.push_str(&format!(
            ",\"error\":{},\"retryable\":{}",
            json_string(e),
            j.retryable
        ));
    }
    if j.panicked {
        out.push_str(",\"panicked\":true");
    }
    if let Some(ms) = j.duration_ms {
        out.push_str(&format!(",\"duration_ms\":{ms}"));
    }
    out
}

fn event_json(e: &SolverEvent) -> String {
    let mut fields = format!(
        "\"t_us\":{},\"source\":{},\"kind\":\"{}\"",
        e.t_us,
        json_string(&e.source),
        e.kind.tag()
    );
    match &e.kind {
        SolverEventKind::Incumbent { objective } => {
            fields.push_str(&format!(",\"objective\":{}", json_f64(*objective)));
        }
        SolverEventKind::Gap {
            incumbent,
            best_bound,
            relative_gap,
            nodes_explored,
        } => {
            fields.push_str(&format!(
                ",\"incumbent\":{},\"best_bound\":{},\"relative_gap\":{},\"nodes_explored\":{nodes_explored}",
                json_f64(*incumbent),
                json_f64(*best_bound),
                json_f64(*relative_gap)
            ));
        }
        SolverEventKind::Anneal {
            restart,
            iteration,
            temperature,
            accept_rate,
            best_cost,
        } => {
            fields.push_str(&format!(
                ",\"restart\":{restart},\"iteration\":{iteration},\"temperature\":{},\"accept_rate\":{},\"best_cost\":{}",
                json_f64(*temperature),
                json_f64(*accept_rate),
                json_f64(*best_cost)
            ));
        }
        SolverEventKind::Degradation {
            reason,
            remaining_deadline_us,
        } => {
            fields.push_str(&format!(
                ",\"reason\":{},\"remaining_deadline_us\":{}",
                json_string(reason),
                json_f64(*remaining_deadline_us)
            ));
        }
        SolverEventKind::Drift {
            ops_flagged,
            max_drift_frac,
            threshold_frac,
        } => {
            fields.push_str(&format!(
                ",\"ops_flagged\":{ops_flagged},\"max_drift_frac\":{},\"threshold_frac\":{}",
                json_f64(*max_drift_frac),
                json_f64(*threshold_frac)
            ));
        }
    }
    format!("{{{fields}}}")
}

fn cancel_job(id: &str, state: &Arc<ServerState>) -> Response {
    let mut jobs = state.jobs.lock();
    let Some(j) = jobs.get_mut(id) else {
        return Response::json(404, "{\"error\":\"no such job\"}");
    };
    if j.state.is_terminal() {
        // Idempotent: cancelling a finished job reports its final state.
        return Response::json(
            200,
            format!(
                "{{\"id\":{},\"state\":\"{}\"}}",
                json_string(id),
                j.state.tag()
            ),
        );
    }
    j.cancel.cancel();
    let was_queued = j.state == JobState::Queued;
    drop(jobs);
    if was_queued {
        // Don't wait for a worker to pop it: settle queued jobs now so
        // the client sees a terminal state immediately, and drop the
        // queue entry lazily (the worker skips cancelled jobs).
        finalize(state, id, JobState::Cancelled, |_| {});
    }
    Response::json(
        202,
        format!("{{\"id\":{},\"state\":\"cancelling\"}}", json_string(id)),
    )
}

// ---------------------------------------------------------------------
// Workers

fn worker_loop(state: &Arc<ServerState>, slot: usize) {
    loop {
        let id = {
            let mut queue = state.queue.lock();
            loop {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = wait_robust(&state.queue_cv, queue);
            }
        };
        // Register the job on this worker's slot so the supervisor can
        // settle it if this thread dies mid-run.
        *state.worker_slots[slot].lock() = Some(id.clone());
        run_job(state, &id);
        *state.worker_slots[slot].lock() = None;
    }
}

/// The per-job seed: retries shift the stream so a stochastic
/// `NoSolution` genuinely re-rolls, while attempt numbers recovered
/// from checkpoint generations keep crash-resume on the same stream.
fn attempt_seed(spec: &JobSpec, attempt: u32) -> u64 {
    spec.seed.wrapping_add(attempt as u64)
}

fn run_job(state: &Arc<ServerState>, id: &str) {
    let mut job_span = state.obs.span("serve.job");
    job_span.set_attr("id", id);
    let (spec, cancel, obs, resumed_hint) = {
        let mut jobs = state.jobs.lock();
        let Some(j) = jobs.get_mut(id) else { return };
        if j.state.is_terminal() {
            return; // cancelled while queued
        }
        j.state = JobState::Running;
        (j.spec.clone(), j.cancel.clone(), j.obs.clone(), j.resumed)
    };
    // Chaos hook: die *outside* the solve sandbox, killing this worker
    // thread — the supervisor must settle the job and respawn the slot.
    if spec.chaos.as_deref() == Some("panic-worker") {
        panic!("chaos: injected worker panic for {id}");
    }
    if cancel.is_cancelled() {
        finalize_cancelled(state, id);
        return;
    }

    let dir = state.config.data_dir.join(id);
    let graph = match placement_graph(state, &spec) {
        Ok(g) => g,
        Err(msg) => {
            finalize(state, id, JobState::Failed, |j| {
                j.error = Some(msg.clone());
                j.retryable = false;
            });
            return;
        }
    };

    // A recovered job resumes the attempt its newest checkpoint
    // generation belongs to; a fresh job starts at attempt 0.
    let mut attempt: u32 = if resumed_hint {
        latest_generation(&dir, "search")
            .ok()
            .flatten()
            .map(|(g, _)| g as u32)
            .unwrap_or(0)
    } else {
        0
    };
    let first_attempt = attempt;

    loop {
        {
            let mut jobs = state.jobs.lock();
            if let Some(j) = jobs.get_mut(id) {
                j.attempts = attempt - first_attempt + 1;
            }
        }
        let config = job_config(state, &spec, attempt, &dir, &cancel, &obs);
        // The panic sandbox: a panicking solve (a solver bug, or the
        // injected "panic-solve" chaos mode) becomes a typed terminal
        // failure for THIS job; the worker thread survives.
        let chaos_solve = spec.chaos.as_deref() == Some("panic-solve");
        let sandboxed = catch_unwind(AssertUnwindSafe(|| {
            if chaos_solve {
                panic!("chaos: injected solve panic");
            }
            Pesto::new(config).place(&graph, &state.cluster)
        }));
        let result = match sandboxed {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                state.obs.counter_add("serve.jobs.panicked", 1);
                finalize(state, id, JobState::Failed, |j| {
                    j.error = Some(format!("solve panicked: {msg}"));
                    j.retryable = false;
                    j.panicked = true;
                });
                write_terminal(state, id, JobState::Failed, None);
                return;
            }
        };
        match result {
            Ok(outcome) => {
                let placement: Vec<u32> = outcome
                    .plan
                    .placement
                    .as_slice()
                    .iter()
                    .map(|d| d.index() as u32)
                    .collect();
                let terminal = if let Some(reason) = &outcome.degradation {
                    let tag = reason.tag().to_string();
                    finalize(state, id, JobState::Degraded, |j| {
                        j.degradation = Some(tag.clone());
                        j.makespan_us = Some(outcome.makespan_us);
                        j.resumed = j.resumed || outcome.resumed;
                    });
                    JobState::Degraded
                } else {
                    finalize(state, id, JobState::Completed, |j| {
                        j.makespan_us = Some(outcome.makespan_us);
                        j.resumed = j.resumed || outcome.resumed;
                    });
                    JobState::Completed
                };
                write_terminal(state, id, terminal, Some(placement));
                // GC after success: superseded generations and any tmp
                // litter go now, not at the next restart.
                if let Ok(report) =
                    prune_with(&*state.config.storage, &dir, state.config.keep_generations)
                {
                    record_prune(&state.obs, &report);
                }
                return;
            }
            Err(PestoError::Cancelled) => {
                finalize_cancelled(state, id);
                return;
            }
            Err(e) if e.is_retryable() && attempt - first_attempt < spec.max_retries => {
                state.obs.counter_add("serve.jobs.retries", 1);
                backoff_wait(state, &spec, attempt, &cancel);
                if cancel.is_cancelled() {
                    finalize_cancelled(state, id);
                    return;
                }
                attempt += 1;
                continue;
            }
            Err(e) => {
                let retryable = e.is_retryable();
                let msg = e.to_string();
                finalize(state, id, JobState::Failed, |j| {
                    j.error = Some(msg.clone());
                    j.retryable = retryable;
                });
                write_terminal(state, id, JobState::Failed, None);
                return;
            }
        }
    }
}

/// Builds the pipeline config for one attempt. The SLA budget applies
/// per attempt (a retry gets a fresh budget); the checkpoint rides in
/// the job's own generation file so attempts never clobber each other.
fn job_config(
    _state: &Arc<ServerState>,
    spec: &JobSpec,
    attempt: u32,
    dir: &Path,
    cancel: &CancelToken,
    obs: &Obs,
) -> PestoConfig {
    let mut config = PestoConfig::fast();
    config.seed = attempt_seed(spec, attempt);
    // Profiling happened (cached) before the pipeline; see
    // `placement_graph`.
    config.profiler_iterations = None;
    config.time_budget = spec.sla_ms.map(Duration::from_millis);
    config.cancel = Some(cancel.clone());
    config.obs = obs.clone();
    if let Some(iters) = spec.iterations {
        config.placer.hybrid.iterations = iters;
    }
    if let Some(restarts) = spec.restarts {
        config.placer.hybrid.restarts = restarts;
    }
    if let Some(threads) = spec.threads {
        config.solver_threads = threads.max(1);
    }
    if let Some(cap) = spec.shard_region_cap {
        config.shard = Some(pesto::shard::ShardConfig {
            region_cap: cap,
            ..Default::default()
        });
    }
    if spec.checkpoint_every > 0 {
        config.checkpoint = Some(CheckpointConfig {
            path: generation_path(dir, "search", attempt as u64),
            every_iters: spec.checkpoint_every,
            resume: true,
        });
    }
    config
}

/// Resolves the graph a job actually places: profiled op-time estimates
/// are computed once per `(graph, seed, iterations)` and shared across
/// every job that submits the same model — the service-level profiler
/// cache the worker pool runs over.
fn placement_graph(state: &Arc<ServerState>, spec: &JobSpec) -> Result<FrozenGraph, String> {
    let graph = spec.graph()?;
    let Some(iters) = spec.profiler_iterations else {
        return Ok(graph);
    };
    let key = (graph_fingerprint(&graph), spec.seed, iters);
    if let Some(cached) = state.profile_cache.lock().get(&key) {
        state.obs.counter_add("serve.profile_cache.hits", 1);
        return Ok((**cached).clone());
    }
    state.obs.counter_add("serve.profile_cache.misses", 1);
    let estimated = Profiler::new(iters, spec.seed)
        .profile(&graph)
        .apply_to(graph);
    let estimated = Arc::new(estimated);
    state
        .profile_cache
        .lock()
        .entry(key)
        .or_insert_with(|| Arc::clone(&estimated));
    Ok((*estimated).clone())
}

/// Exponential backoff with deterministic jitter, polled against the
/// cancel token so a `DELETE` during a backoff wait still lands within
/// ~50 ms.
fn backoff_wait(state: &Arc<ServerState>, spec: &JobSpec, attempt: u32, cancel: &CancelToken) {
    let base = state.config.retry_base.as_millis() as u64;
    let cap = state.config.retry_cap.as_millis() as u64;
    let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
    // splitmix64 on (seed, attempt): deterministic per job, decorrelated
    // across jobs, no RNG state to carry.
    let mut z = spec
        .seed
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    let jitter = (z ^ (z >> 31)) % base.max(1);
    let total = Duration::from_millis(exp + jitter);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if cancel.is_cancelled() {
            return;
        }
        thread::sleep(Duration::from_millis(50).min(deadline - Instant::now()));
    }
}

// ---------------------------------------------------------------------
// Terminal bookkeeping

fn finalize_cancelled(state: &Arc<ServerState>, id: &str) {
    // A cancelled job must leave no partial checkpoint behind: sweep
    // every search generation (the pipeline stopped writing the moment
    // it observed the flag, so nothing is mid-rename here).
    let dir = state.config.data_dir.join(id);
    remove_search_generations(&dir);
    finalize(state, id, JobState::Cancelled, |_| {});
    write_terminal(state, id, JobState::Cancelled, None);
}

fn remove_search_generations(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if (name.starts_with("search.gen-") && name.ends_with(".json")) || name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Moves a job to `terminal` in the registry and folds its duration into
/// the retry-after estimate.
fn finalize(
    state: &Arc<ServerState>,
    id: &str,
    terminal: JobState,
    update: impl FnOnce(&mut JobEntry),
) {
    let mut jobs = state.jobs.lock();
    let Some(j) = jobs.get_mut(id) else { return };
    if j.state.is_terminal() {
        return;
    }
    j.state = terminal;
    let elapsed_ms = j.submitted.elapsed().as_millis() as u64;
    j.duration_ms = Some(elapsed_ms);
    update(j);
    drop(jobs);
    let counter = match terminal {
        JobState::Completed => "serve.jobs.completed",
        JobState::Degraded => "serve.jobs.degraded",
        JobState::Failed => "serve.jobs.failed",
        JobState::Cancelled => "serve.jobs.cancelled",
        JobState::Queued | JobState::Running => return,
    };
    state.obs.counter_add(counter, 1);
    // Submit-to-terminal latency; `/metrics` exposes the p50/p95/p99
    // through the histogram buckets.
    state
        .obs
        .observe("serve.job_duration_ms", elapsed_ms as f64);
    // EWMA with alpha 1/4, integer arithmetic.
    let avg = &state.avg_job_ms;
    let old = avg.load(Ordering::Relaxed);
    let new = if old == 0 {
        elapsed_ms
    } else {
        (old * 3 + elapsed_ms) / 4
    };
    avg.store(new.max(1), Ordering::Relaxed);
}

/// Durably records the terminal state (atomic write), so a crash after
/// this point never re-runs the job.
fn write_terminal(
    state: &Arc<ServerState>,
    id: &str,
    terminal: JobState,
    placement: Option<Vec<u32>>,
) {
    let record = {
        let jobs = state.jobs.lock();
        let Some(j) = jobs.get(id) else { return };
        TerminalRecord {
            id: id.to_string(),
            state: terminal.tag().to_string(),
            degradation: j.degradation.clone(),
            makespan_us: j.makespan_us,
            placement,
            error: j.error.clone(),
            retryable: j.retryable,
            attempts: j.attempts,
            resumed: j.resumed,
            duration_ms: j.duration_ms.unwrap_or(0),
            panicked: j.panicked,
        }
    };
    let dir = state.config.data_dir.join(id);
    if let Ok(text) = serde_json::to_string(&record) {
        // A failed terminal write is survivable: the in-memory state is
        // already terminal, and a crash before a later successful write
        // merely re-runs a deterministic job.
        let _ = state
            .config
            .storage
            .write_atomic(&dir.join("result.json"), text.as_bytes());
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// JSON helpers (emitting; parsing goes through serde_json)

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity/NaN; large sentinels keep parsers happy.
        "1e308".to_string()
    }
}

/// Client-side helper shared by the load generator and the tests: polls
/// `GET /jobs/:id` until the job reaches a terminal state or `timeout`
/// passes. Returns the last status body.
pub fn wait_terminal(addr: &str, id: &str, timeout: Duration) -> Result<Value, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = client_request(
            addr,
            "GET",
            &format!("/jobs/{id}"),
            None,
            Duration::from_secs(10),
        )
        .map_err(|e| format!("status poll failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "status poll got HTTP {}: {}",
                resp.status, resp.body
            ));
        }
        let v: Value = serde_json::from_str(&resp.body)
            .map_err(|e| format!("unparseable status body: {e:?}"))?;
        let st = v.get("state").and_then(Value::as_str).unwrap_or("");
        if JobState::from_tag(st).is_some_and(JobState::is_terminal) {
            return Ok(v);
        }
        if Instant::now() > deadline {
            return Err(format!(
                "job {id} not terminal after {timeout:?} (state {st})"
            ));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Client-side submit helper: posts `body` and returns `(status, body)`.
pub fn submit_raw(addr: &str, body: &str) -> Result<ClientResponse, String> {
    client_request(addr, "POST", "/jobs", Some(body), Duration::from_secs(10))
        .map_err(|e| format!("submit failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::retry_hint_from;

    #[test]
    fn retry_hint_scales_with_backlog_and_floors_at_100ms() {
        // Empty-ish queue: one job ahead at the 50ms floor rate.
        assert_eq!(retry_hint_from(0, 1, 0, None), 100);
        // Ten jobs ahead at 400ms each, two workers: 2200ms drain.
        assert_eq!(retry_hint_from(400, 2, 10, None), 2200);
        // Zero workers is treated as one.
        assert_eq!(retry_hint_from(400, 0, 1, None), 800);
    }

    #[test]
    fn retry_hint_is_clamped_to_the_jobs_own_sla() {
        // The drain estimate says 2200ms, but the job's SLA is 1500ms:
        // waiting longer than its own budget is never useful advice.
        assert_eq!(retry_hint_from(400, 2, 10, Some(1500)), 1500);
        // An SLA tighter than the 100ms floor wins too (the clamp is the
        // outermost bound), and a zero SLA still yields a positive hint.
        assert_eq!(retry_hint_from(400, 2, 10, Some(30)), 30);
        assert_eq!(retry_hint_from(400, 2, 10, Some(0)), 1);
        // A generous SLA leaves the estimate untouched.
        assert_eq!(retry_hint_from(400, 2, 10, Some(60_000)), 2200);
        assert_eq!(retry_hint_from(400, 2, 10, None), 2200);
    }
}
