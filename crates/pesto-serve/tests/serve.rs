//! End-to-end tests of the placement service over real sockets: the
//! happy path, admission control, SLA degradation, mid-search
//! cancellation hygiene, and the SIGKILL-and-restart recovery protocol.

use pesto::graph::to_json;
use pesto::models::ModelSpec;
use pesto::{load_checkpoint, CheckpointConfig, Pesto, PestoConfig};
use pesto_serve::http::client_request;
use pesto_serve::{submit_raw, wait_terminal, Server, ServerConfig};
use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pesto-serve-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    fs::create_dir_all(&p).unwrap();
    p
}

fn test_server(name: &str, workers: usize, queue_capacity: usize) -> (Server, String, PathBuf) {
    let data_dir = tmp_dir(name);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        data_dir: data_dir.clone(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    (server, addr, data_dir)
}

fn small_graph_json() -> String {
    to_json(&ModelSpec::transformer(1, 2, 64).generate(4, 1))
}

/// A submit body around `graph`, with per-test knobs appended (already
/// JSON-encoded, e.g. `"iterations":400,"seed":7`).
fn body_with(graph_json: &str, knobs: &str) -> String {
    if knobs.is_empty() {
        format!("{{\"graph\":{graph_json}}}")
    } else {
        format!("{{\"graph\":{graph_json},{knobs}}}")
    }
}

fn submit_ok(addr: &str, body: &str) -> String {
    let resp = submit_raw(addr, body).unwrap();
    assert_eq!(
        resp.status, 202,
        "unexpected submit response: {}",
        resp.body
    );
    let v: Value = serde_json::from_str(&resp.body).unwrap();
    v.get("id").and_then(Value::as_str).unwrap().to_string()
}

fn get_json(addr: &str, path: &str) -> Value {
    let resp = client_request(addr, "GET", path, None, Duration::from_secs(10)).unwrap();
    assert_eq!(
        resp.status, 200,
        "GET {path} -> {}: {}",
        resp.status, resp.body
    );
    serde_json::from_str(&resp.body).unwrap()
}

fn wait_running(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let v = get_json(addr, &format!("/jobs/{id}"));
        let state = v.get("state").and_then(Value::as_str).unwrap().to_string();
        if state == "running" {
            return;
        }
        assert!(state == "queued", "job {id} reached {state} before running");
        assert!(Instant::now() < deadline, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_completes_and_streams_solver_events() {
    let (server, addr, _dir) = test_server("complete", 2, 16);

    let id = submit_ok(
        &addr,
        &body_with(&small_graph_json(), "\"seed\":7,\"checkpoint_every\":0"),
    );
    let v = wait_terminal(&addr, &id, Duration::from_secs(120)).unwrap();
    assert_eq!(v.get("state").and_then(Value::as_str), Some("completed"));
    assert!(v.get("makespan_us").and_then(Value::as_f64).unwrap() > 0.0);
    assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(1));

    // The event stream paginates: a first read returns a cursor, and
    // reading from that cursor returns nothing new for a finished job.
    let next = v.get("events_next").and_then(Value::as_u64).unwrap();
    assert!(next > 0, "a completed search should have emitted events");
    let Some(Value::Seq(events)) = v.get("events").cloned() else {
        panic!("missing events array");
    };
    assert!(!events.is_empty());
    let v2 = get_json(&addr, &format!("/jobs/{id}?events_since={next}"));
    let Some(Value::Seq(tail)) = v2.get("events").cloned() else {
        panic!("missing events array");
    };
    assert!(tail.is_empty(), "cursor read re-delivered events");

    // The registry and health endpoints agree on the outcome.
    let list = get_json(&addr, "/jobs");
    assert!(serde_json::to_string(&list).unwrap().contains(&id));
    let health = get_json(&addr, "/healthz");
    assert_eq!(health.get("completed").and_then(Value::as_u64), Some(1));
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    server.stop();
}

#[test]
fn malformed_submissions_are_rejected_at_admission() {
    let (server, addr, _dir) = test_server("badsubmit", 1, 16);
    let resp = submit_raw(&addr, "{\"not\":\"a graph\"}").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("graph"));
    let resp = submit_raw(&addr, "not json at all").unwrap();
    assert_eq!(resp.status, 400);
    // Nothing was admitted.
    let health = get_json(&addr, "/healthz");
    assert_eq!(health.get("submitted").and_then(Value::as_u64), Some(0));
    server.stop();
}

#[test]
fn overload_is_a_typed_429_with_retry_after() {
    let (server, addr, _dir) = test_server("overload", 1, 1);
    let graph = small_graph_json();
    // Jobs long enough to still be running while we probe admission.
    let long = "\"iterations\":50000000,\"restarts\":1,\"checkpoint_every\":0";

    let a = submit_ok(&addr, &body_with(&graph, long));
    wait_running(&addr, &a); // the queue is empty again...
    let b = submit_ok(&addr, &body_with(&graph, long)); // ...now it is full
    let rejected = submit_raw(&addr, &body_with(&graph, long)).unwrap();
    assert_eq!(
        rejected.status, 429,
        "expected rejection: {}",
        rejected.body
    );
    let hint: u64 = rejected.header("retry-after").unwrap().parse().unwrap();
    assert!(hint >= 1);
    let v: Value = serde_json::from_str(&rejected.body).unwrap();
    assert!(v.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 100);

    // A rejected job with its own SLA gets a hint clamped to that budget:
    // the drain estimate is at least the 100ms floor, so a 30ms SLA
    // forces the clamp to be what comes back.
    let sla_knobs = format!("{long},\"sla_ms\":30");
    let rejected_sla = submit_raw(&addr, &body_with(&graph, &sla_knobs)).unwrap();
    assert_eq!(rejected_sla.status, 429);
    let v: Value = serde_json::from_str(&rejected_sla.body).unwrap();
    assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(30));

    // Cancel both admitted jobs: the running one stops cooperatively,
    // the queued one settles immediately without ever running.
    for id in [&a, &b] {
        let resp = client_request(
            &addr,
            "DELETE",
            &format!("/jobs/{id}"),
            None,
            Duration::from_secs(10),
        )
        .unwrap();
        assert!(resp.status == 202 || resp.status == 200);
    }
    let va = wait_terminal(&addr, &a, Duration::from_secs(60)).unwrap();
    assert_eq!(va.get("state").and_then(Value::as_str), Some("cancelled"));
    let vb = wait_terminal(&addr, &b, Duration::from_secs(60)).unwrap();
    assert_eq!(vb.get("state").and_then(Value::as_str), Some("cancelled"));
    assert_eq!(vb.get("attempts").and_then(Value::as_u64), Some(0));

    let health = get_json(&addr, "/healthz");
    assert_eq!(health.get("rejected").and_then(Value::as_u64), Some(2));
    assert_eq!(health.get("cancelled").and_then(Value::as_u64), Some(2));
    server.stop();
}

#[test]
fn sla_degrades_instead_of_timing_out() {
    let (server, addr, _dir) = test_server("sla", 1, 8);
    // A 1 ms SLA cannot fit any search: the job must still terminate,
    // with a plan from a cheaper rung and the reason recorded.
    let id = submit_ok(
        &addr,
        &body_with(&small_graph_json(), "\"sla_ms\":1,\"checkpoint_every\":0"),
    );
    let v = wait_terminal(&addr, &id, Duration::from_secs(120)).unwrap();
    assert_eq!(v.get("state").and_then(Value::as_str), Some("degraded"));
    let reason = v.get("degradation").and_then(Value::as_str).unwrap();
    assert!(
        [
            "budget_exhausted",
            "budget_too_small_for_search",
            "deadline_during_search"
        ]
        .contains(&reason),
        "unexpected degradation reason {reason}"
    );
    assert!(v.get("makespan_us").and_then(Value::as_f64).unwrap() > 0.0);
    server.stop();
}

#[test]
fn cancel_mid_search_stops_quickly_and_leaves_no_partial_checkpoint() {
    let (server, addr, data_dir) = test_server("cancel", 1, 8);
    // Long search with a tight checkpoint cadence: the first generation
    // file appearing proves we are mid-hybrid-search.
    let id = submit_ok(
        &addr,
        &body_with(
            &small_graph_json(),
            "\"iterations\":50000000,\"restarts\":1,\"checkpoint_every\":50,\"seed\":11",
        ),
    );
    let job_dir = data_dir.join(&id);
    let gen0 = job_dir.join("search.gen-0.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !gen0.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(5));
    }

    let resp = client_request(
        &addr,
        "DELETE",
        &format!("/jobs/{id}"),
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 202);
    // Cancellation is polled every annealing iteration, so the stop is
    // prompt — well under one checkpoint cadence worth of work.
    let cancelled_at = Instant::now();
    let v = wait_terminal(&addr, &id, Duration::from_secs(30)).unwrap();
    assert_eq!(v.get("state").and_then(Value::as_str), Some("cancelled"));
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(10),
        "cancel took {:?}",
        cancelled_at.elapsed()
    );

    // Hygiene: no checkpoint state survives a cancel — neither committed
    // generations nor temp litter. The spec and terminal record remain.
    let leftovers: Vec<String> = fs::read_dir(&job_dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("search.gen-") || n.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "partial checkpoints left: {leftovers:?}"
    );
    assert!(job_dir.join("spec.json").exists());
    assert!(job_dir.join("result.json").exists());
    server.stop();
}

// ---------------------------------------------------------------------
// SIGKILL and restart

// The returned child is always kill()+wait()ed by the caller; clippy
// cannot see reaping across the function boundary.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(data_dir: &Path) -> (std::process::Child, String) {
    let addr_file = data_dir.join("serve.addr");
    let _ = fs::remove_file(&addr_file);
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_pesto-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkill_and_restart_resumes_the_checkpoint_bit_identically() {
    let data_dir = tmp_dir("sigkill");
    let (mut child, addr) = spawn_daemon(&data_dir);

    // A job slow enough to survive until the kill, checkpointing often.
    let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
    let iterations = 120_000usize;
    let id = submit_ok(
        &addr,
        &body_with(
            &to_json(&graph),
            &format!(
                "\"iterations\":{iterations},\"restarts\":2,\"checkpoint_every\":500,\"seed\":42"
            ),
        ),
    );
    let gen0 = data_dir.join(&id).join("search.gen-0.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !gen0.exists() {
        assert!(Instant::now() < deadline, "no checkpoint before kill");
        std::thread::sleep(Duration::from_millis(5));
    }

    // SIGKILL: no destructors, no flush, exactly the crash being modeled.
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(
        !data_dir.join(&id).join("result.json").exists(),
        "job finished before the kill; raise `iterations` in this test"
    );

    // Freeze the snapshot the restarted daemon will resume from.
    let snapshot = data_dir.join("snapshot-at-kill.ckpt.json");
    fs::copy(&gen0, &snapshot).unwrap();
    let frozen = load_checkpoint(&snapshot).unwrap();
    assert!(frozen.hybrid.is_some(), "checkpoint has no search state");

    // Restart on the same data dir: recovery must re-admit the job,
    // verify the checkpoint fingerprint, resume, and complete.
    let (child2, addr2) = spawn_daemon(&data_dir);
    let v = wait_terminal(&addr2, &id, Duration::from_secs(300)).unwrap();
    // Terminate the daemon before asserting so a failure can't leak it.
    let mut child2 = child2;
    child2.kill().unwrap();
    child2.wait().unwrap();

    assert_eq!(v.get("state").and_then(Value::as_str), Some("completed"));
    assert_eq!(v.get("resumed").and_then(Value::as_bool), Some(true));
    let daemon_makespan = v.get("makespan_us").and_then(Value::as_f64).unwrap();

    let result: Value =
        serde_json::from_str(&fs::read_to_string(data_dir.join(&id).join("result.json")).unwrap())
            .unwrap();
    let Some(Value::Seq(daemon_placement)) = result.get("placement").cloned() else {
        panic!("terminal record has no placement");
    };
    let daemon_placement: Vec<u64> = daemon_placement
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();

    // Bit-identity witness: resuming the *same frozen snapshot* in
    // process, with the same config the daemon builds, must land on the
    // same incumbent the daemon reported.
    let mut config = PestoConfig::fast();
    config.seed = 42;
    config.profiler_iterations = None;
    config.placer.hybrid.iterations = iterations;
    config.placer.hybrid.restarts = 2;
    config.checkpoint = Some(CheckpointConfig {
        path: snapshot.clone(),
        every_iters: 500,
        resume: true,
    });
    let reference = Pesto::new(config)
        .place(
            &graph,
            &pesto::graph::Cluster::homogeneous(2, 16 * 1024 * 1024 * 1024),
        )
        .unwrap();
    assert!(reference.resumed);
    let reference_placement: Vec<u64> = reference
        .plan
        .placement
        .as_slice()
        .iter()
        .map(|d| d.index() as u64)
        .collect();
    assert_eq!(daemon_placement, reference_placement, "placements diverged");
    assert!(
        (daemon_makespan - reference.makespan_us).abs() < 1e-9,
        "makespans diverged: daemon {daemon_makespan} vs reference {}",
        reference.makespan_us
    );

    let _ = fs::remove_dir_all(&data_dir);
}

// ---------------------------------------------------------------------
// Telemetry: /metrics and /debug/flight

/// Minimal Prometheus text-format reader: returns `name{labels} -> value`
/// for every sample line, and asserts the document structure (every
/// sample belongs to a family announced by `# HELP` + `# TYPE`).
fn parse_prometheus(text: &str) -> std::collections::HashMap<String, f64> {
    let mut typed = std::collections::HashSet::new();
    let mut helped = std::collections::HashSet::new();
    let mut samples = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().unwrap().to_string());
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split(' ').next().unwrap().to_string());
        } else if !line.is_empty() {
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            let bare = key.split('{').next().unwrap();
            let family = bare
                .strip_suffix("_bucket")
                .or_else(|| bare.strip_suffix("_sum"))
                .or_else(|| bare.strip_suffix("_count"))
                .unwrap_or(bare);
            assert!(
                typed.contains(bare) || typed.contains(family),
                "sample {key} has no # TYPE line"
            );
            assert!(
                helped.contains(bare) || helped.contains(family),
                "sample {key} has no # HELP line"
            );
            samples.insert(key.to_string(), value.parse::<f64>().unwrap());
        }
    }
    samples
}

#[test]
fn metrics_agrees_with_healthz_and_flight_recorder_dumps() {
    let (server, addr, _dir) = test_server("metrics", 2, 16);
    let graph = small_graph_json();
    for seed in [3, 4] {
        let id = submit_ok(
            &addr,
            &body_with(&graph, &format!("\"seed\":{seed},\"checkpoint_every\":0")),
        );
        let v = wait_terminal(&addr, &id, Duration::from_secs(120)).unwrap();
        assert_eq!(v.get("state").and_then(Value::as_str), Some("completed"));
    }

    let health = get_json(&addr, "/healthz");
    let resp = client_request(&addr, "GET", "/metrics", None, Duration::from_secs(10)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let metrics = parse_prometheus(&resp.body);

    // Every job counter the health view reports must round-trip through
    // the exposition — same registry, same numbers.
    for (health_key, prom_key) in [
        ("submitted", "serve_jobs_submitted_total"),
        ("rejected", "serve_jobs_rejected_total"),
        ("completed", "serve_jobs_completed_total"),
        ("degraded", "serve_jobs_degraded_total"),
        ("failed", "serve_jobs_failed_total"),
        ("cancelled", "serve_jobs_cancelled_total"),
        ("retries", "serve_jobs_retries_total"),
        ("recovered", "serve_jobs_recovered_total"),
        ("profile_cache_hits", "serve_profile_cache_hits_total"),
        ("profile_cache_misses", "serve_profile_cache_misses_total"),
        (
            "pruned_generations",
            "serve_checkpoints_pruned_generations_total",
        ),
        ("pruned_tmp", "serve_checkpoints_pruned_tmp_total"),
        ("panicked", "serve_jobs_panicked_total"),
        ("worker_restarts", "serve_worker_restarts_total"),
        (
            "checkpoints_quarantined",
            "serve_checkpoints_quarantined_total",
        ),
        (
            "storage_faults_injected",
            "serve_storage_faults_injected_total",
        ),
        ("workers_alive", "serve_workers_alive"),
        ("queued", "serve_queue_depth"),
        ("jobs", "serve_jobs_total"),
        ("workers", "serve_workers"),
        ("queue_capacity", "serve_queue_capacity"),
        ("events_dropped", "serve_solver_events_dropped"),
    ] {
        let h = health.get(health_key).and_then(Value::as_u64).unwrap() as f64;
        assert_eq!(
            metrics.get(prom_key).copied(),
            Some(h),
            "{prom_key} disagrees with /healthz {health_key}"
        );
    }
    assert_eq!(metrics["serve_jobs_completed_total"], 2.0);
    // The latency histogram saw both terminal jobs.
    assert_eq!(metrics["serve_job_duration_ms_count"], 2.0);
    assert!(metrics["serve_job_duration_ms_bucket{le=\"+Inf\"}"] == 2.0);

    // The flight recorder carries the serve.job spans and the metric
    // snapshot the /metrics scrape just recorded.
    let flight = get_json(&addr, "/debug/flight");
    assert_eq!(flight.get("enabled").and_then(Value::as_bool), Some(true));
    let spans = serde_json::to_string(flight.get("recent_spans").unwrap()).unwrap();
    assert!(spans.contains("serve.job"), "no serve.job span in {spans}");
    let Some(Value::Seq(snaps)) = flight.get("metric_snapshots").cloned() else {
        panic!("missing metric_snapshots");
    };
    assert!(!snaps.is_empty(), "scrapes should leave flight snapshots");

    server.stop();
}
