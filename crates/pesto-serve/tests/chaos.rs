//! Chaos suite: the service under seeded storage faults and injected
//! panics. The invariants are the service's whole robustness story:
//!
//! 1. Every *admitted* job reaches exactly one terminal state — panics
//!    become typed `failed` records, crashed workers are respawned, and
//!    no job is ever lost or wedged.
//! 2. The control plane (`/healthz`, `/jobs`, `/metrics`) keeps
//!    answering `200` throughout, no matter what the data plane is
//!    surviving.
//! 3. A daemon restarted over a corrupted newest checkpoint quarantines
//!    the bad generation and resumes bit-identically from the newest
//!    *valid* one.
//!
//! Everything is seeded: a failure reproduces with
//! `cargo test -p pesto-serve --test chaos` (see EXPERIMENTS.md for the
//! recipe and the pinned seeds).

use pesto::graph::to_json;
use pesto::models::ModelSpec;
use pesto::{
    load_checkpoint, ChaosPlan, ChaosStorage, CheckpointConfig, Pesto, PestoConfig, Storage,
};
use pesto_serve::http::client_request;
use pesto_serve::{submit_raw, wait_terminal, Server, ServerConfig};
use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pinned chaos seed: the whole storage-fault sequence derives from it.
const CHAOS_SEED: u64 = 0xC4A05;

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pesto-chaos-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    fs::create_dir_all(&p).unwrap();
    p
}

fn small_graph_json() -> String {
    to_json(&ModelSpec::transformer(1, 2, 64).generate(4, 1))
}

fn body_with(graph_json: &str, knobs: &str) -> String {
    if knobs.is_empty() {
        format!("{{\"graph\":{graph_json}}}")
    } else {
        format!("{{\"graph\":{graph_json},{knobs}}}")
    }
}

fn get_json(addr: &str, path: &str) -> Value {
    let resp = client_request(addr, "GET", path, None, Duration::from_secs(10)).unwrap();
    assert_eq!(
        resp.status, 200,
        "GET {path} -> {}: {}",
        resp.status, resp.body
    );
    serde_json::from_str(&resp.body).unwrap()
}

/// The job mix: what gets submitted and what terminal state it must
/// reach if admitted.
struct MixEntry {
    knobs: String,
    expect_state: &'static str,
    expect_panicked: bool,
}

fn job_mix() -> Vec<MixEntry> {
    let mut mix = Vec::new();
    for i in 0..14u64 {
        let seed = 100 + i;
        let entry = match i % 4 {
            // A plain job: must complete despite the storage chaos
            // around it (the solve itself never touches storage).
            0 => MixEntry {
                knobs: format!("\"seed\":{seed},\"checkpoint_every\":0"),
                expect_state: "completed",
                expect_panicked: false,
            },
            // A solve that panics inside the worker's sandbox: a typed
            // terminal failure, the worker survives.
            1 => MixEntry {
                knobs: format!("\"seed\":{seed},\"checkpoint_every\":0,\"chaos\":\"panic-solve\""),
                expect_state: "failed",
                expect_panicked: true,
            },
            // A panic *outside* the sandbox: the worker thread dies, the
            // supervisor settles the orphan and respawns the slot.
            2 => MixEntry {
                knobs: format!("\"seed\":{seed},\"checkpoint_every\":0,\"chaos\":\"panic-worker\""),
                expect_state: "failed",
                expect_panicked: true,
            },
            // An impossible SLA: terminates degraded, never times out.
            _ => MixEntry {
                knobs: format!("\"seed\":{seed},\"checkpoint_every\":0,\"sla_ms\":1"),
                expect_state: "degraded",
                expect_panicked: false,
            },
        };
        mix.push(entry);
    }
    mix
}

#[test]
fn seeded_chaos_mix_never_loses_a_job_or_the_control_plane() {
    let data_dir = tmp_dir("mix");
    let chaos: Arc<ChaosStorage> = Arc::new(ChaosStorage::new(CHAOS_SEED, ChaosPlan::aggressive()));
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_capacity: 64,
        data_dir: data_dir.clone(),
        // Plenty of respawns, tiny backoff: the chaos mix kills several
        // workers and the test should not spend its budget sleeping.
        worker_restart_budget: 32,
        worker_restart_backoff: Duration::from_millis(5),
        storage: chaos.clone(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Control-plane prober: hammers /healthz, /jobs, and /metrics for
    // the whole run. Any non-200 is a failed invariant.
    let stop = Arc::new(AtomicBool::new(false));
    let prober = {
        let stop = stop.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut probes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for path in ["/healthz", "/jobs", "/metrics"] {
                    let resp =
                        client_request(&addr, "GET", path, None, Duration::from_secs(10)).unwrap();
                    assert_eq!(
                        resp.status, 200,
                        "control plane fell over: GET {path} -> {} ({})",
                        resp.status, resp.body
                    );
                }
                probes += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            probes
        })
    };

    // Submit the mix. Chaos can fail the durable spec write, which is a
    // 500 and the job is NOT admitted — that is correct behavior, so
    // only 202-accepted jobs join the settlement list.
    let graph = small_graph_json();
    let mut accepted: Vec<(String, MixEntry)> = Vec::new();
    let mut refused = 0usize;
    for entry in job_mix() {
        let resp = submit_raw(&addr, &body_with(&graph, &entry.knobs)).unwrap();
        match resp.status {
            202 => {
                let v: Value = serde_json::from_str(&resp.body).unwrap();
                let id = v.get("id").and_then(Value::as_str).unwrap().to_string();
                accepted.push((id, entry));
            }
            500 => refused += 1,
            other => panic!("unexpected submit status {other}: {}", resp.body),
        }
    }
    assert!(
        !accepted.is_empty(),
        "chaos refused every submission; lower the fault rates"
    );

    // Every admitted job settles in its expected terminal state.
    for (id, entry) in &accepted {
        let v = wait_terminal(&addr, id, Duration::from_secs(300))
            .unwrap_or_else(|e| panic!("job {id} never settled: {e}"));
        assert_eq!(
            v.get("state").and_then(Value::as_str),
            Some(entry.expect_state),
            "job {id} ({}) settled wrong: {v:?}",
            entry.knobs
        );
        assert_eq!(
            v.get("panicked").and_then(Value::as_bool).unwrap_or(false),
            entry.expect_panicked,
            "job {id} panicked flag wrong: {v:?}"
        );
    }

    // The supervisor respawned every crashed worker: all slots alive.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let health = get_json(&addr, "/healthz");
        if health.get("workers_alive").and_then(Value::as_u64) == Some(3) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers never came back: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    let probes = prober.join().expect("control-plane prober failed");
    assert!(probes > 0, "prober never probed");

    // Telemetry agrees with what actually happened.
    let health = get_json(&addr, "/healthz");
    let h = |key: &str| health.get(key).and_then(Value::as_u64).unwrap();
    let panicking_jobs = accepted.iter().filter(|(_, e)| e.expect_panicked).count() as u64;
    let worker_kills = accepted
        .iter()
        .filter(|(_, e)| e.knobs.contains("panic-worker"))
        .count() as u64;
    assert_eq!(h("panicked"), panicking_jobs);
    assert!(
        h("worker_restarts") >= worker_kills,
        "restarts {} < worker kills {worker_kills}",
        h("worker_restarts")
    );
    assert_eq!(h("jobs"), accepted.len() as u64);
    assert_eq!(h("submitted"), accepted.len() as u64);
    // The fault counter folds the injector's own count exactly, and the
    // aggressive plan over this many storage ops injects for certain.
    assert!(
        chaos.faults_injected() > 0,
        "no faults injected; refused={refused}"
    );
    assert_eq!(h("storage_faults_injected"), chaos.faults_injected());

    server.stop();
    let _ = fs::remove_dir_all(&data_dir);
}

// ---------------------------------------------------------------------
// Corruption of the newest checkpoint generation + daemon restart

// The returned child is always kill()+wait()ed by the caller; clippy
// cannot see reaping across the function boundary.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(data_dir: &Path) -> (std::process::Child, String) {
    let addr_file = data_dir.join("serve.addr");
    let _ = fs::remove_file(&addr_file);
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_pesto-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn restart_over_a_corrupt_newest_generation_quarantines_and_resumes_the_valid_one() {
    let data_dir = tmp_dir("corrupt-restart");
    let (mut child, addr) = spawn_daemon(&data_dir);

    // A job slow enough to survive until the kill, checkpointing often.
    let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
    let iterations = 120_000usize;
    let resp = submit_raw(
        &addr,
        &body_with(
            &to_json(&graph),
            &format!(
                "\"iterations\":{iterations},\"restarts\":2,\"checkpoint_every\":500,\"seed\":42"
            ),
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
    let v: Value = serde_json::from_str(&resp.body).unwrap();
    let id = v.get("id").and_then(Value::as_str).unwrap().to_string();

    let job_dir = data_dir.join(&id);
    let gen0 = job_dir.join("search.gen-0.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !gen0.exists() {
        assert!(Instant::now() < deadline, "no checkpoint before kill");
        std::thread::sleep(Duration::from_millis(5));
    }

    child.kill().unwrap();
    child.wait().unwrap();
    assert!(
        !job_dir.join("result.json").exists(),
        "job finished before the kill; raise `iterations` in this test"
    );

    // Freeze the good generation, then fabricate a *corrupt newer* one:
    // same bytes with the payload's last bit flipped, exactly what torn
    // storage hands the recovery scan. The walk-back must quarantine
    // gen-1 and resume gen-0.
    let snapshot = data_dir.join("snapshot-at-kill.ckpt.json");
    fs::copy(&gen0, &snapshot).unwrap();
    let frozen = load_checkpoint(&snapshot).unwrap();
    assert!(frozen.hybrid.is_some(), "checkpoint has no search state");
    let mut corrupt = fs::read(&gen0).unwrap();
    *corrupt.last_mut().unwrap() ^= 0x01;
    fs::write(job_dir.join("search.gen-1.json"), &corrupt).unwrap();

    let (child2, addr2) = spawn_daemon(&data_dir);
    let v = wait_terminal(&addr2, &id, Duration::from_secs(300)).unwrap();
    let health = get_json(&addr2, "/healthz");
    let mut child2 = child2;
    child2.kill().unwrap();
    child2.wait().unwrap();

    assert_eq!(v.get("state").and_then(Value::as_str), Some("completed"));
    assert_eq!(v.get("resumed").and_then(Value::as_bool), Some(true));
    let daemon_makespan = v.get("makespan_us").and_then(Value::as_f64).unwrap();

    // The corrupt generation is evidence, not garbage: moved, not
    // deleted, and counted.
    assert!(
        job_dir
            .join("quarantine")
            .join("search.gen-1.json")
            .exists(),
        "corrupt generation was not quarantined"
    );
    assert!(
        !job_dir.join("search.gen-1.json").exists(),
        "corrupt generation still in the scan path"
    );
    assert!(
        health
            .get("checkpoints_quarantined")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "quarantine not counted: {health:?}"
    );

    let result: Value =
        serde_json::from_str(&fs::read_to_string(job_dir.join("result.json")).unwrap()).unwrap();
    let Some(Value::Seq(daemon_placement)) = result.get("placement").cloned() else {
        panic!("terminal record has no placement");
    };
    let daemon_placement: Vec<u64> = daemon_placement
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();

    // Bit-identity witness: resuming the frozen copy of the *valid*
    // generation in process must land exactly where the daemon did.
    let mut config = PestoConfig::fast();
    config.seed = 42;
    config.profiler_iterations = None;
    config.placer.hybrid.iterations = iterations;
    config.placer.hybrid.restarts = 2;
    config.checkpoint = Some(CheckpointConfig {
        path: snapshot.clone(),
        every_iters: 500,
        resume: true,
    });
    let reference = Pesto::new(config)
        .place(
            &graph,
            &pesto::graph::Cluster::homogeneous(2, 16 * 1024 * 1024 * 1024),
        )
        .unwrap();
    assert!(reference.resumed);
    let reference_placement: Vec<u64> = reference
        .plan
        .placement
        .as_slice()
        .iter()
        .map(|d| d.index() as u64)
        .collect();
    assert_eq!(daemon_placement, reference_placement, "placements diverged");
    assert!(
        (daemon_makespan - reference.makespan_us).abs() < 1e-9,
        "makespans diverged: daemon {daemon_makespan} vs reference {}",
        reference.makespan_us
    );

    let _ = fs::remove_dir_all(&data_dir);
}
