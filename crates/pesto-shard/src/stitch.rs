//! Phase 3: stitch region placements into one global, feasible plan.
//!
//! Region solves are independent, so the stitched placement can be
//! globally wrong in two ways:
//!
//! 1. **Memory**: every region assumed the whole GPU memory was its own,
//!    so the union can overload a device. A deterministic rebalance moves
//!    the largest-footprint ops off overloaded GPUs (preferring ops with
//!    the most slack) until every device fits, or fails with
//!    [`ShardError::Infeasible`] if the model cannot fit at all.
//! 2. **Seams**: cross-region edges were invisible to both endpoint
//!    solvers, so the cut can induce needless transfers and link
//!    congestion. A bounded first-improvement local search over the
//!    *boundary ops* (endpoints of cross-region edges) re-places them
//!    one at a time against a congestion-aware surrogate objective:
//!    `max` per-device compute load + `max` per-link transfer load.
//!    This is the same bounded local-search shape as the outage-repair
//!    pass in `pesto::robust`, but scored by the surrogate instead of a
//!    full ETF simulation so it stays cheap at paper scale.
//!
//! Both passes are deterministic: ops are visited in a fixed order
//! (descending cross-boundary bytes, then index) and moves are chosen by
//! first improvement over devices in index order. The optional deadline
//! only truncates the pass early — budget-free runs are bit-stable.

use crate::partition::PartitionResult;
use crate::solve::RegionSolution;
use crate::{ShardConfig, ShardError};
use pesto_cost::CommModel;
use pesto_graph::{Cluster, DeviceId, DeviceKind, FrozenGraph, OpId, Placement};
use pesto_obs::Obs;
use std::time::Instant;

/// The stitched global placement plus refinement statistics.
#[derive(Debug, Clone)]
pub struct StitchOutcome {
    /// The final, memory-feasible global placement.
    pub placement: Placement,
    /// Ops moved by the memory rebalance.
    pub rebalance_moves: usize,
    /// Ops considered by the boundary refinement (cross-region endpoints).
    pub boundary_ops: usize,
    /// Accepted boundary-refinement moves.
    pub refine_moves: usize,
    /// Whether the deadline truncated the refinement pass.
    pub deadline_hit: bool,
}

/// Congestion-aware surrogate state: per-device compute load and
/// per-directed-device-pair transfer load, updated incrementally as ops
/// move. The score is `max(load) + max(link)` — the two quantities a bad
/// seam inflates.
struct Surrogate<'a> {
    graph: &'a FrozenGraph,
    cluster: &'a Cluster,
    comm: &'a CommModel,
    placement: Placement,
    load: Vec<f64>,
    /// `link[src * devices + dst]`, µs of transfer booked on that pair.
    link: Vec<f64>,
    /// Per-device resident bytes, for memory-aware moves.
    used_bytes: Vec<u64>,
}

impl<'a> Surrogate<'a> {
    fn new(
        graph: &'a FrozenGraph,
        cluster: &'a Cluster,
        comm: &'a CommModel,
        placement: Placement,
    ) -> Self {
        let d = cluster.device_count();
        let mut s = Surrogate {
            graph,
            cluster,
            comm,
            placement,
            load: vec![0.0; d],
            link: vec![0.0; d * d],
            used_bytes: vec![0; d],
        };
        for v in graph.op_ids() {
            let dev = s.placement.device(v);
            s.load[dev.index()] += graph.op(v).compute_us();
            s.used_bytes[dev.index()] += graph.op(v).memory_bytes();
        }
        for &(u, v, bytes) in graph.edges() {
            let (a, b) = (s.placement.device(u), s.placement.device(v));
            if a != b {
                s.link[a.index() * d + b.index()] += s.transfer_us(a, b, bytes);
            }
        }
        s
    }

    fn transfer_us(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        match self.cluster.link_between(src, dst) {
            Some(l) => self
                .comm
                .transfer_us(self.cluster.link(l).link_type(), bytes),
            None => f64::INFINITY,
        }
    }

    fn score(&self) -> f64 {
        let max_load = self.load.iter().copied().fold(0.0, f64::max);
        let max_link = self.link.iter().copied().fold(0.0, f64::max);
        max_load + max_link
    }

    /// Moves `op` to `to`, updating load, link, and memory state.
    fn apply(&mut self, op: OpId, to: DeviceId) {
        let from = self.placement.device(op);
        if from == to {
            return;
        }
        let d = self.cluster.device_count();
        let o = self.graph.op(op);
        self.load[from.index()] -= o.compute_us();
        self.load[to.index()] += o.compute_us();
        self.used_bytes[from.index()] -= o.memory_bytes();
        self.used_bytes[to.index()] += o.memory_bytes();
        for &(p, bytes) in self.graph.preds_with_bytes(op) {
            let pd = self.placement.device(p);
            if pd != from {
                self.link[pd.index() * d + from.index()] -= self.transfer_us(pd, from, bytes);
            }
            if pd != to {
                self.link[pd.index() * d + to.index()] += self.transfer_us(pd, to, bytes);
            }
        }
        for &(sx, bytes) in self.graph.succs_with_bytes(op) {
            let sd = self.placement.device(sx);
            if sd != from {
                self.link[from.index() * d + sd.index()] -= self.transfer_us(from, sd, bytes);
            }
            if sd != to {
                self.link[to.index() * d + sd.index()] += self.transfer_us(to, sd, bytes);
            }
        }
        self.placement.set_device(op, to);
    }

    /// Whether moving `op` to `to` keeps `to` within its memory capacity.
    fn fits(&self, op: OpId, to: DeviceId) -> bool {
        let cap = self
            .cluster
            .device(to)
            .map(|dev| dev.memory_bytes())
            .unwrap_or(0);
        self.used_bytes[to.index()] + self.graph.op(op).memory_bytes() <= cap
    }
}

/// Assembles region solutions into a global placement and repairs it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stitch(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    part: &PartitionResult,
    solutions: &[RegionSolution],
    config: &ShardConfig,
    deadline: Option<Instant>,
    obs: &Obs,
) -> Result<StitchOutcome, ShardError> {
    let mut span = obs.span("shard.stitch");

    // 1. Assemble: start from affinity defaults (covers nothing in
    // practice — every op is in a region — but keeps the invariant that
    // the placement is total even if a region under-reported).
    let mut placement = Placement::affinity_default(graph, cluster);
    for sol in solutions {
        for &(op, dev) in &sol.assignments {
            placement.set_device(op, dev);
        }
    }

    let mut surrogate = Surrogate::new(graph, cluster, comm, placement);

    // 2. Memory rebalance.
    let rebalance_moves = rebalance_memory(&mut surrogate)?;
    span.set_attr("rebalance_moves", rebalance_moves);

    // 3. Boundary refinement.
    let boundary = boundary_ops(graph, part, &surrogate.placement, cluster);
    span.set_attr("boundary_ops", boundary.len());
    let mut refine_moves = 0usize;
    let mut deadline_hit = false;
    let gpus = cluster.gpus();
    'passes: for _ in 0..config.boundary_passes {
        let mut improved = false;
        for &op in &boundary {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                deadline_hit = true;
                break 'passes;
            }
            let before = surrogate.score();
            let cur = surrogate.placement.device(op);
            for &cand in &gpus {
                if cand == cur || !surrogate.fits(op, cand) {
                    continue;
                }
                surrogate.apply(op, cand);
                if surrogate.score() < before - 1e-9 {
                    refine_moves += 1;
                    improved = true;
                    break; // first improvement
                }
                surrogate.apply(op, cur); // revert
            }
        }
        if !improved {
            break;
        }
    }
    span.set_attr("refine_moves", refine_moves);

    Ok(StitchOutcome {
        placement: surrogate.placement,
        rebalance_moves,
        boundary_ops: boundary.len(),
        refine_moves,
        deadline_hit,
    })
}

/// GPU ops incident to a cross-region edge, ordered by descending
/// cross-boundary bytes (ties by op index) — the seam ops most worth
/// revisiting first.
fn boundary_ops(
    graph: &FrozenGraph,
    part: &PartitionResult,
    placement: &Placement,
    cluster: &Cluster,
) -> Vec<OpId> {
    let mut cross_bytes = vec![0u64; graph.op_count()];
    for &(u, v, bytes) in graph.edges() {
        if part.region_of[u.index()] != part.region_of[v.index()] {
            cross_bytes[u.index()] += bytes;
            cross_bytes[v.index()] += bytes;
        }
    }
    let mut ops: Vec<OpId> = graph
        .op_ids()
        .filter(|&v| {
            cross_bytes[v.index()] > 0
                && matches!(graph.op(v).kind(), DeviceKind::Gpu)
                && cluster.is_gpu(placement.device(v))
        })
        .collect();
    ops.sort_by(|&a, &b| {
        cross_bytes[b.index()]
            .cmp(&cross_bytes[a.index()])
            .then(a.cmp(&b))
    });
    ops
}

/// Deterministically moves ops off overloaded GPUs until every device
/// fits. Victims are chosen largest-footprint-first (ties by index) and
/// sent to the GPU with the most free memory (ties by index).
fn rebalance_memory(s: &mut Surrogate<'_>) -> Result<usize, ShardError> {
    let mut moves = 0usize;
    let gpus = s.cluster.gpus();
    loop {
        // Most-overloaded GPU first.
        let over = gpus
            .iter()
            .filter_map(|&g| {
                let cap = s.cluster.device(g).ok()?.memory_bytes();
                let used = s.used_bytes[g.index()];
                (used > cap).then(|| (g, used - cap))
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.index().cmp(&a.0.index())));
        let Some((victim_dev, _)) = over else {
            return Ok(moves);
        };
        // Largest movable op on the overloaded device.
        let op = s
            .graph
            .op_ids()
            .filter(|&v| {
                s.placement.device(v) == victim_dev
                    && matches!(s.graph.op(v).kind(), DeviceKind::Gpu)
            })
            .max_by(|&a, &b| {
                s.graph
                    .op(a)
                    .memory_bytes()
                    .cmp(&s.graph.op(b).memory_bytes())
                    .then(b.index().cmp(&a.index()))
            });
        let Some(op) = op else {
            return Err(ShardError::Infeasible(format!(
                "device {} over memory capacity with no movable op",
                victim_dev.index()
            )));
        };
        // Destination: the GPU with the most free memory that fits it.
        let dest = gpus
            .iter()
            .filter(|&&g| g != victim_dev && s.fits(op, g))
            .max_by(|&&a, &&b| {
                let free = |g: DeviceId| {
                    s.cluster
                        .device(g)
                        .map(|d| d.memory_bytes().saturating_sub(s.used_bytes[g.index()]))
                        .unwrap_or(0)
                };
                free(a).cmp(&free(b)).then(b.index().cmp(&a.index()))
            });
        let Some(&dest) = dest else {
            return Err(ShardError::Infeasible(
                "model does not fit in cluster memory under any rebalance".to_string(),
            ));
        };
        s.apply(op, dest);
        moves += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::solve::solve_regions;
    use pesto_graph::OpGraph;

    fn chain(n: usize, mem: u64) -> FrozenGraph {
        let mut g = OpGraph::new("chain");
        let mut prev: Option<OpId> = None;
        for i in 0..n {
            let v = g.add_op(format!("op{i}"), DeviceKind::Gpu, 10.0, mem);
            if let Some(p) = prev {
                g.add_edge(p, v, 1 << 16).unwrap();
            }
            prev = Some(v);
        }
        g.freeze().unwrap()
    }

    fn stitched(graph: &FrozenGraph, cluster: &Cluster, cap: usize) -> StitchOutcome {
        let comm = CommModel::default_v100();
        let part = partition(graph, cap);
        let cfg = ShardConfig {
            region_iterations: 40,
            ..ShardConfig::default()
        };
        let sols = solve_regions(
            graph,
            cluster,
            &comm,
            &part.regions,
            &cfg,
            3,
            1,
            None,
            None,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        stitch(
            graph,
            cluster,
            &comm,
            &part,
            &sols,
            &cfg,
            None,
            &Obs::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn stitched_placement_is_total_and_memory_feasible() {
        let g = chain(40, 64);
        let cluster = Cluster::two_gpus();
        let out = stitched(&g, &cluster, 12);
        assert_eq!(out.placement.op_count(), g.op_count());
        assert!(out.placement.oom_devices(&g, &cluster).is_empty());
    }

    #[test]
    fn rebalance_fixes_region_memory_overcommit() {
        // Each region alone fits on one GPU, but the union does not: 8
        // regions × 400 bytes on a 1000-byte device must spread out.
        let g = chain(8, 400);
        let cluster = Cluster::homogeneous(4, 1000);
        let out = stitched(&g, &cluster, 1);
        assert!(out.placement.oom_devices(&g, &cluster).is_empty());
    }

    #[test]
    fn infeasible_model_reports_typed_error() {
        let g = chain(4, 600);
        let cluster = Cluster::homogeneous(2, 1000);
        let comm = CommModel::default_v100();
        let part = partition(&g, 1);
        let cfg = ShardConfig::default();
        let sols = solve_regions(
            &g,
            &cluster,
            &comm,
            &part.regions,
            &cfg,
            3,
            1,
            None,
            None,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        let err = stitch(
            &g,
            &cluster,
            &comm,
            &part,
            &sols,
            &cfg,
            None,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::Infeasible(_)));
    }

    #[test]
    fn surrogate_incremental_matches_rebuild() {
        let g = chain(12, 16);
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let mut s = Surrogate::new(
            &g,
            &cluster,
            &comm,
            Placement::affinity_default(&g, &cluster),
        );
        // Apply a few moves, then rebuild from scratch and compare.
        let g0 = cluster.gpu(0);
        let g1 = cluster.gpu(1);
        s.apply(OpId::from_index(3), g1);
        s.apply(OpId::from_index(7), g1);
        s.apply(OpId::from_index(3), g0);
        let rebuilt = Surrogate::new(&g, &cluster, &comm, s.placement.clone());
        for (a, b) in s.load.iter().zip(&rebuilt.load) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in s.link.iter().zip(&rebuilt.link) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(s.used_bytes, rebuilt.used_bytes);
    }
}
