//! Phase 2: solve each region as an independent sub-problem.
//!
//! Every region's induced subgraph is extracted
//! ([`FrozenGraph::subgraph`]), coarsened to a solver-sized instance, and
//! placed by the existing hybrid solver seeded with the region's mSCT
//! plan. Regions fan out over a scoped worker pool (`threads` workers
//! pulling from an atomic queue, largest critical-path weight first), but
//! every region's result lands in a slot indexed by its stable region
//! index, and its RNG seed is `run.seed + region.index` — so the
//! assembled result is identical at any thread count.
//!
//! When a global `time_budget` is set, each region receives a wall-clock
//! share proportional to its critical-path weight (with an even-split
//! floor so slack regions still get *some* budget), clamped to the global
//! deadline. Deadlines are inherently wall-clock, so determinism is only
//! guaranteed for budget-free runs.

use crate::partition::Region;
use crate::{ShardConfig, ShardError};
use pesto_baselines::m_sct;
use pesto_coarsen::{coarsen, CoarsenConfig};
use pesto_cost::CommModel;
use pesto_graph::{Cluster, DeviceId, FrozenGraph, OpId};
use pesto_ilp::{HybridConfig, PestoPlacer, PlacerConfig, SolvePath};
use pesto_obs::Obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A solved region: the placement of its member ops, in parent ids.
#[derive(Debug, Clone)]
pub struct RegionSolution {
    /// Region index (matches [`Region::index`]).
    pub index: usize,
    /// `(parent op, device)` assignments for every member.
    pub assignments: Vec<(OpId, DeviceId)>,
    /// Which solve path produced the region's placement.
    pub path: SolvePath,
    /// Whether the region's deadline truncated its search.
    pub deadline_hit: bool,
    /// Boundary edges severed by this region's extraction.
    pub boundary_edges: usize,
}

/// Even-split floor: every region gets at least this fraction of its
/// even share of the solve budget, regardless of critical-path weight.
const EVEN_SHARE_FLOOR: f64 = 0.3;

/// Computes each region's share of `budget`, proportional to
/// critical-path weight with an even-split floor.
pub(crate) fn budget_shares(regions: &[Region], budget: Duration) -> Vec<Duration> {
    let total_w: f64 = regions.iter().map(|r| r.cp_weight_us).sum();
    let n = regions.len().max(1) as f64;
    regions
        .iter()
        .map(|r| {
            let prop = if total_w > 0.0 {
                r.cp_weight_us / total_w
            } else {
                1.0 / n
            };
            let frac = EVEN_SHARE_FLOOR / n + (1.0 - EVEN_SHARE_FLOOR) * prop;
            budget.mul_f64(frac)
        })
        .collect()
}

/// Solves all regions, fanned out over `run_threads` workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_regions(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    regions: &[Region],
    config: &ShardConfig,
    seed: u64,
    run_threads: usize,
    solve_budget: Option<Duration>,
    global_deadline: Option<Instant>,
    cancel: Option<pesto_obs::CancelToken>,
    obs: &Obs,
) -> Result<Vec<RegionSolution>, ShardError> {
    let shares = solve_budget.map(|b| budget_shares(regions, b));

    // Work queue: region positions sorted by descending critical-path
    // weight (ties by index), so heavyweight regions start first and the
    // pool tail is short.
    let mut order: Vec<usize> = (0..regions.len()).collect();
    order.sort_by(|&a, &b| {
        regions[b]
            .cp_weight_us
            .total_cmp(&regions[a].cp_weight_us)
            .then(a.cmp(&b))
    });

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RegionSolution>>> = Mutex::new(vec![None; regions.len()]);
    let failure: Mutex<Option<ShardError>> = Mutex::new(None);
    let workers = run_threads.clamp(1, regions.len().max(1));

    let worker_index = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Name this worker's lane so every region-solve span in the
                // merged chrome-trace lands under a stable thread label.
                let w = worker_index.fetch_add(1, Ordering::Relaxed);
                if obs.is_enabled() {
                    obs.name_lane(format!("shard-worker-{w}"));
                }
                loop {
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    if pos >= order.len() {
                        return;
                    }
                    if failure.lock().expect("failure lock").is_some() {
                        return;
                    }
                    if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                        *failure.lock().expect("failure lock") = Some(ShardError::Cancelled);
                        return;
                    }
                    let region = &regions[order[pos]];
                    let deadline = match (&shares, global_deadline) {
                        (Some(shares), _) => {
                            let d = Instant::now() + shares[region.index];
                            Some(global_deadline.map_or(d, |g| d.min(g)))
                        }
                        (None, g) => g,
                    };
                    match solve_one(
                        graph, cluster, comm, region, config, seed, deadline, &cancel, obs,
                    ) {
                        Ok(sol) => {
                            slots.lock().expect("slots lock")[region.index] = Some(sol);
                        }
                        Err(e) => {
                            let mut f = failure.lock().expect("failure lock");
                            if f.is_none() {
                                *f = Some(e);
                            }
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let slots = slots.into_inner().expect("slots lock");
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every region solved or failure reported"))
        .collect())
}

/// Solves one region: extract → coarsen → hybrid (mSCT-seeded) → expand.
///
/// Solver failures other than cancellation degrade to the region's mSCT
/// placement instead of failing the whole shard — the stitch phase's
/// memory rebalance and boundary refinement still get a full placement
/// to work with, and the degradation is visible as
/// [`SolvePath::Constructive`] in the region report.
#[allow(clippy::too_many_arguments)]
fn solve_one(
    graph: &FrozenGraph,
    cluster: &Cluster,
    comm: &CommModel,
    region: &Region,
    config: &ShardConfig,
    seed: u64,
    deadline: Option<Instant>,
    cancel: &Option<pesto_obs::CancelToken>,
    obs: &Obs,
) -> Result<RegionSolution, ShardError> {
    let mut span = obs.span("shard.region-solve");
    span.set_attr("region", region.index);
    span.set_attr("ops", region.members.len());

    let extract = graph.subgraph(&region.members)?;
    let sub = &extract.graph;
    span.set_attr("boundary_edges", extract.boundary_edge_count());

    let coarsening = coarsen(sub, &CoarsenConfig::to_target(config.region_coarsen_target));
    let coarse = coarsening.coarse();

    let msct_coarse = m_sct(coarse, cluster, comm);
    let placer_cfg = PlacerConfig {
        hybrid: HybridConfig {
            iterations: config.region_iterations,
            restarts: config.region_restarts,
            seed: seed.wrapping_add(region.index as u64),
            initial_placements: vec![msct_coarse.placement.clone()],
            deadline,
            cancel: cancel.clone(),
            obs: obs.clone(),
            ..HybridConfig::default()
        },
        deadline,
        cancel: cancel.clone(),
        obs: obs.clone(),
        ..PlacerConfig::default()
    };
    let placer = PestoPlacer::with_config(*comm, placer_cfg);
    let (coarse_placement, path, deadline_hit) = match placer.place(coarse, cluster) {
        Ok(out) => (out.plan.placement, out.path, out.deadline_hit),
        Err(pesto_ilp::IlpError::Cancelled) => return Err(ShardError::Cancelled),
        // Degrade to mSCT; stitch repairs any memory overload globally.
        Err(_) => (msct_coarse.placement, SolvePath::Constructive, false),
    };

    let sub_placement = coarsening.expand_placement(&coarse_placement);
    let assignments = sub
        .op_ids()
        .map(|s| (extract.mapping.to_parent(s), sub_placement.device(s)))
        .collect();
    span.set_attr("path", format!("{path:?}"));
    Ok(RegionSolution {
        index: region.index,
        assignments,
        path,
        deadline_hit,
        boundary_edges: extract.boundary_edge_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use pesto_graph::{DeviceKind, OpGraph};

    fn layered(n: usize) -> FrozenGraph {
        let mut g = OpGraph::new("layered");
        let mut prev: Option<OpId> = None;
        for i in 0..n {
            let a = g.add_op(format!("a{i}"), DeviceKind::Gpu, 10.0, 32);
            let b = g.add_op(format!("b{i}"), DeviceKind::Gpu, 12.0, 32);
            if let Some(p) = prev {
                g.add_edge(p, a, 64).unwrap();
                g.add_edge(p, b, 64).unwrap();
            }
            let j = g.add_op(format!("j{i}"), DeviceKind::Gpu, 8.0, 32);
            g.add_edge(a, j, 64).unwrap();
            g.add_edge(b, j, 64).unwrap();
            prev = Some(j);
        }
        g.freeze().unwrap()
    }

    #[test]
    fn budget_shares_favor_critical_regions_with_floor() {
        let g = layered(20);
        let p = partition(&g, 12);
        assert!(p.regions.len() >= 2);
        let shares = budget_shares(&p.regions, Duration::from_secs(10));
        let total: Duration = shares.iter().sum();
        assert!(total <= Duration::from_secs(10) + Duration::from_millis(1));
        // Everyone gets at least the floor of the even share.
        let floor = Duration::from_secs(10).mul_f64(EVEN_SHARE_FLOOR / p.regions.len() as f64);
        for s in &shares {
            assert!(*s >= floor, "{s:?} < floor {floor:?}");
        }
    }

    #[test]
    fn all_regions_solved_into_stable_slots() {
        let g = layered(30);
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let p = partition(&g, 25);
        let cfg = ShardConfig {
            region_iterations: 60,
            ..ShardConfig::default()
        };
        let sols = solve_regions(
            &g,
            &cluster,
            &comm,
            &p.regions,
            &cfg,
            7,
            2,
            None,
            None,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(sols.len(), p.regions.len());
        for (i, s) in sols.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.assignments.len(), p.regions[i].members.len());
        }
    }

    #[test]
    fn solutions_identical_across_thread_counts() {
        let g = layered(30);
        let cluster = Cluster::two_gpus();
        let comm = CommModel::default_v100();
        let p = partition(&g, 25);
        let cfg = ShardConfig {
            region_iterations: 60,
            ..ShardConfig::default()
        };
        let solve = |threads| {
            solve_regions(
                &g,
                &cluster,
                &comm,
                &p.regions,
                &cfg,
                7,
                threads,
                None,
                None,
                None,
                &Obs::disabled(),
            )
            .unwrap()
        };
        let one = solve(1);
        let four = solve(4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.assignments, b.assignments);
            assert_eq!(a.path, b.path);
        }
    }
}
