//! Hierarchical sharded placement: partition → per-region solve → stitch.
//!
//! The real TensorFlow graphs behind the Pesto paper have 19k+ ops; a
//! monolithic coarsen-and-solve pipeline handles instances orders of
//! magnitude smaller. This crate makes paper-scale placement tractable by
//! decomposing it, the way Tesserae scales placement policies (PAPERS.md):
//!
//! 1. **Partition** ([`partition`] module): coarsener colocation groups
//!    become *atoms*, packed in topological order into regions of at most
//!    [`ShardConfig::region_cap`] ops, each ranked by how much of the
//!    global critical path it contains.
//! 2. **Solve** ([`solve`] module): each region's induced subgraph is
//!    coarsened and placed independently by the existing hybrid solver,
//!    fanned out over a scoped worker pool. Under a `time_budget`, each
//!    region's wall-clock share is proportional to its critical-path rank
//!    (Mayer et al., PAPERS.md).
//! 3. **Stitch** ([`stitch`] module): region placements are pinned into a
//!    global placement, a deterministic rebalance restores memory
//!    feasibility, and a bounded boundary-refinement pass re-places the
//!    endpoints of cross-region edges against a congestion-aware
//!    surrogate (max device load + max link load) to fix seams.
//!
//! # Determinism
//!
//! For a fixed seed, budget-free sharded placement is bit-stable at *any*
//! thread count: the partition depends only on the graph and the cap,
//! region `r` solves with seed `seed + r` into a slot indexed by `r`, and
//! the stitch visits ops in a fixed order. Wall-clock deadlines (from
//! `time_budget`) are the only nondeterminism source, exactly as in the
//! monolithic pipeline.
//!
//! # Example
//!
//! ```
//! use pesto_graph::{OpGraph, DeviceKind, Cluster};
//! use pesto_cost::CommModel;
//! use pesto_shard::{Sharder, ShardConfig, ShardRun};
//!
//! # fn main() -> Result<(), pesto_shard::ShardError> {
//! let mut g = OpGraph::new("chain");
//! let mut prev = None;
//! for i in 0..30 {
//!     let v = g.add_op(format!("op{i}"), DeviceKind::Gpu, 10.0, 64);
//!     if let Some(p) = prev { g.add_edge(p, v, 1024).unwrap(); }
//!     prev = Some(v);
//! }
//! let g = g.freeze().unwrap();
//! let cluster = Cluster::two_gpus();
//! let config = ShardConfig { region_cap: 10, region_iterations: 50, ..ShardConfig::default() };
//! let out = Sharder::new(CommModel::default_v100(), config)
//!     .place(&g, &cluster, &ShardRun::default())?;
//! assert_eq!(out.placement.op_count(), 30);
//! assert!(out.report.regions.len() > 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod solve;
pub mod stitch;

use pesto_cost::CommModel;
use pesto_graph::{Cluster, FrozenGraph, GraphError, Placement};
use pesto_obs::{CancelToken, Obs};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

pub use partition::{partition, PartitionResult, Region};
pub use solve::RegionSolution;
pub use stitch::StitchOutcome;

/// Sharding knobs, carried by `pesto`'s `PestoConfig::shard`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Maximum fine ops per region. Graphs at or under the cap solve as a
    /// single region (monolithic).
    pub region_cap: usize,
    /// Coarsening target for each region's subgraph before its sub-solve.
    pub region_coarsen_target: usize,
    /// Annealing iterations per region sub-solve.
    pub region_iterations: usize,
    /// Independent annealing restarts per region sub-solve.
    pub region_restarts: usize,
    /// Boundary-refinement sweeps over the seam ops during stitching
    /// (the boundary-refine budget; `0` disables refinement).
    pub boundary_passes: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            region_cap: 1200,
            region_coarsen_target: 160,
            region_iterations: 2500,
            region_restarts: 1,
            boundary_passes: 2,
        }
    }
}

/// Per-invocation inputs that are not sharding *policy*: seed, worker
/// threads, wall-clock budget, cancellation, telemetry.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Base RNG seed; region `r` solves with `seed + r`.
    pub seed: u64,
    /// Worker threads for the region fan-out (results are identical at
    /// any value; this only changes wall-clock).
    pub threads: usize,
    /// Wall-clock budget for the whole shard (partition + solve +
    /// stitch). Roughly 75% goes to region solves (split by critical-path
    /// rank), the rest to stitching. `None` runs to completion and keeps
    /// the result deterministic.
    pub time_budget: Option<Duration>,
    /// Cooperative cancellation, polled between regions and propagated
    /// into region sub-solvers.
    pub cancel: Option<CancelToken>,
    /// Telemetry sink; emits `shard.partition`, `shard.region-solve`
    /// (one per region), and `shard.stitch` spans.
    pub obs: Obs,
}

impl Default for ShardRun {
    fn default() -> Self {
        ShardRun {
            seed: 0x9e37,
            threads: 1,
            time_budget: None,
            cancel: None,
            obs: Obs::disabled(),
        }
    }
}

/// Fraction of the time budget reserved for the region solves; the
/// remainder covers partitioning and stitching.
const SOLVE_BUDGET_FRAC: f64 = 0.75;

/// Errors from sharded placement.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// Subgraph extraction or plan validation failed.
    Graph(GraphError),
    /// A region sub-solver failed in a non-degradable way.
    Solve(pesto_ilp::IlpError),
    /// The stitched model cannot be made memory-feasible on this cluster.
    Infeasible(String),
    /// The caller's cancellation token was raised.
    Cancelled,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Graph(e) => write!(f, "shard graph error: {e}"),
            ShardError::Solve(e) => write!(f, "shard region solve failed: {e}"),
            ShardError::Infeasible(msg) => write!(f, "stitched plan infeasible: {msg}"),
            ShardError::Cancelled => write!(f, "sharded placement cancelled"),
        }
    }
}

impl Error for ShardError {}

impl From<GraphError> for ShardError {
    fn from(e: GraphError) -> Self {
        ShardError::Graph(e)
    }
}

impl From<pesto_ilp::IlpError> for ShardError {
    fn from(e: pesto_ilp::IlpError) -> Self {
        match e {
            pesto_ilp::IlpError::Cancelled => ShardError::Cancelled,
            other => ShardError::Solve(other),
        }
    }
}

/// Per-region entry of the [`ShardReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Region index, in coarse topological order.
    pub index: usize,
    /// Fine ops in the region.
    pub ops: usize,
    /// Cross-region edges incident to the region.
    pub boundary_edges: usize,
    /// Critical-path weight used for budget ranking, µs.
    pub cp_weight_us: f64,
    /// Solve path of the region's sub-solve (`"Hybrid"`, `"Exact"`,
    /// `"Constructive"` when the sub-solver degraded, ...).
    pub path: String,
    /// Whether the region's deadline truncated its search.
    pub deadline_hit: bool,
}

/// What the shard did — partition shape, cut statistics, per-region solve
/// provenance, stitch repair counts, and phase wall-clocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Region size cap in force.
    pub region_cap: usize,
    /// Per-region details, indexed by region.
    pub regions: Vec<RegionReport>,
    /// Edges crossing region boundaries.
    pub cut_edges: usize,
    /// Tensor bytes on cut edges.
    pub cut_bytes: u64,
    /// Ops the memory rebalance moved.
    pub rebalance_moves: usize,
    /// Seam ops visited by boundary refinement.
    pub boundary_ops: usize,
    /// Accepted boundary-refinement moves.
    pub refine_moves: usize,
    /// Whether any phase was truncated by the time budget.
    pub deadline_hit: bool,
    /// Partition wall-clock, milliseconds (report-only; not part of the
    /// deterministic result).
    pub partition_ms: f64,
    /// Region-solve wall-clock, milliseconds.
    pub solve_ms: f64,
    /// Stitch wall-clock, milliseconds.
    pub stitch_ms: f64,
}

/// Result of a sharded placement: a total, memory-feasible placement plus
/// the report.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The stitched placement (placement-only; scheduling is the
    /// caller's ETF/simulation concern, as in the monolithic pipeline).
    pub placement: Placement,
    /// What happened, per phase and per region.
    pub report: ShardReport,
}

/// The sharded placement engine.
#[derive(Debug, Clone)]
pub struct Sharder {
    comm: CommModel,
    config: ShardConfig,
}

impl Sharder {
    /// Creates a sharder with the given communication model and config.
    pub fn new(comm: CommModel, config: ShardConfig) -> Self {
        Sharder { comm, config }
    }

    /// The sharding configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Places `graph` on `cluster` by partition → solve → stitch.
    ///
    /// # Errors
    ///
    /// [`ShardError::Infeasible`] when the model cannot fit in cluster
    /// memory, [`ShardError::Cancelled`] on cancellation, and
    /// [`ShardError::Graph`]/[`ShardError::Solve`] for structural
    /// failures.
    pub fn place(
        &self,
        graph: &FrozenGraph,
        cluster: &Cluster,
        run: &ShardRun,
    ) -> Result<ShardOutcome, ShardError> {
        let start = Instant::now();
        let obs = &run.obs;
        let global_deadline = run.time_budget.map(|b| start + b);
        let check_cancel = || -> Result<(), ShardError> {
            if run.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                Err(ShardError::Cancelled)
            } else {
                Ok(())
            }
        };

        check_cancel()?;
        let part = {
            let mut span = obs.span("shard.partition");
            span.set_attr("ops", graph.op_count());
            span.set_attr("region_cap", self.config.region_cap);
            let part = partition(graph, self.config.region_cap);
            span.set_attr("regions", part.regions.len());
            span.set_attr("cut_edges", part.cut_edges);
            part
        };
        let partition_ms = start.elapsed().as_secs_f64() * 1e3;
        obs.gauge_set("shard.regions", part.regions.len() as f64);
        obs.gauge_set("shard.cut_edges", part.cut_edges as f64);

        check_cancel()?;
        let solve_start = Instant::now();
        let solve_budget = run
            .time_budget
            .map(|b| b.saturating_sub(start.elapsed()).mul_f64(SOLVE_BUDGET_FRAC));
        let solutions = solve::solve_regions(
            graph,
            cluster,
            &self.comm,
            &part.regions,
            &self.config,
            run.seed,
            run.threads,
            solve_budget,
            global_deadline,
            run.cancel.clone(),
            obs,
        )?;
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;

        check_cancel()?;
        let stitch_start = Instant::now();
        let stitched = stitch::stitch(
            graph,
            cluster,
            &self.comm,
            &part,
            &solutions,
            &self.config,
            global_deadline,
            obs,
        )?;
        let stitch_ms = stitch_start.elapsed().as_secs_f64() * 1e3;

        let deadline_hit = stitched.deadline_hit || solutions.iter().any(|s| s.deadline_hit);
        let regions = part
            .regions
            .iter()
            .zip(&solutions)
            .map(|(r, s)| RegionReport {
                index: r.index,
                ops: r.members.len(),
                boundary_edges: s.boundary_edges,
                cp_weight_us: r.cp_weight_us,
                path: format!("{:?}", s.path),
                deadline_hit: s.deadline_hit,
            })
            .collect();
        Ok(ShardOutcome {
            placement: stitched.placement,
            report: ShardReport {
                region_cap: self.config.region_cap,
                regions,
                cut_edges: part.cut_edges,
                cut_bytes: part.cut_bytes,
                rebalance_moves: stitched.rebalance_moves,
                boundary_ops: stitched.boundary_ops,
                refine_moves: stitched.refine_moves,
                deadline_hit,
                partition_ms,
                solve_ms,
                stitch_ms,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::{DeviceKind, OpGraph};

    fn mesh(n: usize) -> FrozenGraph {
        let mut g = OpGraph::new("mesh");
        let mut prev: Option<pesto_graph::OpId> = None;
        for i in 0..n {
            let a = g.add_op(format!("a{i}"), DeviceKind::Gpu, 10.0 + (i % 7) as f64, 128);
            let b = g.add_op(format!("b{i}"), DeviceKind::Gpu, 12.0 + (i % 5) as f64, 128);
            if let Some(p) = prev {
                g.add_edge(p, a, 4096).unwrap();
                g.add_edge(p, b, 2048).unwrap();
            }
            let j = g.add_op(format!("j{i}"), DeviceKind::Gpu, 6.0, 64);
            g.add_edge(a, j, 4096).unwrap();
            g.add_edge(b, j, 4096).unwrap();
            prev = Some(j);
        }
        g.freeze().unwrap()
    }

    fn quick_config() -> ShardConfig {
        ShardConfig {
            region_cap: 30,
            region_iterations: 60,
            ..ShardConfig::default()
        }
    }

    #[test]
    fn end_to_end_places_every_op_memory_feasibly() {
        let g = mesh(40);
        let cluster = Cluster::two_gpus();
        let out = Sharder::new(CommModel::default_v100(), quick_config())
            .place(&g, &cluster, &ShardRun::default())
            .unwrap();
        assert_eq!(out.placement.op_count(), g.op_count());
        assert!(out.placement.oom_devices(&g, &cluster).is_empty());
        assert!(out.report.regions.len() > 1);
        assert_eq!(
            out.report.regions.iter().map(|r| r.ops).sum::<usize>(),
            g.op_count()
        );
    }

    #[test]
    fn deterministic_across_seeds_and_threads() {
        let g = mesh(40);
        let cluster = Cluster::two_gpus();
        let sharder = Sharder::new(CommModel::default_v100(), quick_config());
        let place = |threads| {
            sharder
                .place(
                    &g,
                    &cluster,
                    &ShardRun {
                        threads,
                        ..ShardRun::default()
                    },
                )
                .unwrap()
        };
        let a = place(1);
        let b = place(1);
        let c = place(3);
        assert_eq!(a.placement, b.placement, "same seed+threads must repeat");
        assert_eq!(a.placement, c.placement, "thread count must not matter");
        assert_eq!(a.report.cut_edges, c.report.cut_edges);
    }

    #[test]
    fn cancellation_aborts_with_typed_error() {
        let g = mesh(40);
        let cluster = Cluster::two_gpus();
        let token = CancelToken::new();
        token.cancel();
        let err = Sharder::new(CommModel::default_v100(), quick_config())
            .place(
                &g,
                &cluster,
                &ShardRun {
                    cancel: Some(token),
                    ..ShardRun::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, ShardError::Cancelled));
    }

    #[test]
    fn obs_spans_cover_all_three_phases() {
        let g = mesh(40);
        let cluster = Cluster::two_gpus();
        let obs = Obs::enabled();
        Sharder::new(CommModel::default_v100(), quick_config())
            .place(
                &g,
                &cluster,
                &ShardRun {
                    obs: obs.clone(),
                    ..ShardRun::default()
                },
            )
            .unwrap();
        let spans = obs.spans();
        let has = |name: &str| spans.iter().any(|s| s.name == name);
        assert!(has("shard.partition"));
        assert!(has("shard.region-solve"));
        assert!(has("shard.stitch"));
    }

    #[test]
    fn report_serializes_to_json() {
        let g = mesh(20);
        let cluster = Cluster::two_gpus();
        let out = Sharder::new(CommModel::default_v100(), quick_config())
            .place(&g, &cluster, &ShardRun::default())
            .unwrap();
        let json = serde_json::to_string(&out.report).unwrap();
        assert!(json.contains("\"region_cap\""));
        let back: ShardReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.regions.len(), out.report.regions.len());
    }
}
