//! Phase 1: split the op DAG into solver-sized regions.
//!
//! Regions are seeded from the coarsener's colocation groups: the graph is
//! first coarsened into *atoms* (groups of ops that Theorem 3.5 says are
//! safe — and profitable — to colocate), and atoms are then packed, in
//! coarse topological order, into regions holding at most
//! [`crate::ShardConfig::region_cap`] fine ops. Packing in topological
//! order keeps regions contiguous bands of the DAG, which minimizes both
//! the number of cut edges and the scheduling interleaving between
//! regions.
//!
//! Each region carries a *critical-path weight*: the total compute of its
//! members that lie on a global critical path
//! ([`pesto_graph::analysis::criticality_us`]). The solve phase allocates
//! the global time budget proportionally to this weight — regions the
//! critical path runs through deserve the solver's attention, regions of
//! pure slack do not (Mayer et al., PAPERS.md).

use pesto_coarsen::{coarsen, CoarsenConfig};
use pesto_graph::{analysis, FrozenGraph, OpId};

/// One region of the partition: a set of fine ops to be solved as an
/// independent sub-problem.
#[derive(Debug, Clone)]
pub struct Region {
    /// Stable region index (0-based, in coarse topological order).
    pub index: usize,
    /// Member ops (parent-graph ids), ascending.
    pub members: Vec<OpId>,
    /// Total compute of members lying on a global critical path, µs.
    pub cp_weight_us: f64,
}

/// The result of partitioning: regions plus cut statistics.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Regions in coarse topological order; every op is in exactly one.
    pub regions: Vec<Region>,
    /// `region_of[op.index()]` is the index of the region holding `op`.
    pub region_of: Vec<u32>,
    /// Edges whose endpoints fall in different regions.
    pub cut_edges: usize,
    /// Total tensor bytes on cut edges.
    pub cut_bytes: u64,
}

/// Relative tolerance for "this op lies on a critical path".
const CP_REL_TOL: f64 = 1e-9;

/// Partitions `graph` into regions of at most `region_cap` ops each.
///
/// Deterministic: depends only on the graph and the cap. A graph no
/// larger than the cap yields a single region (the monolithic case).
pub fn partition(graph: &FrozenGraph, region_cap: usize) -> PartitionResult {
    let n = graph.op_count();
    let cap = region_cap.max(1);
    let crit = analysis::criticality_us(graph);
    let cp = crit.iter().copied().fold(0.0, f64::max);
    let on_cp = |i: usize| crit[i] >= cp * (1.0 - CP_REL_TOL);

    let mut regions = Vec::new();
    if n <= cap {
        let members: Vec<OpId> = graph.op_ids().collect();
        let cp_weight_us = members
            .iter()
            .filter(|&&v| on_cp(v.index()))
            .map(|&v| graph.op(v).compute_us())
            .sum();
        regions.push(Region {
            index: 0,
            members,
            cp_weight_us,
        });
        return finish(graph, regions);
    }

    // Atoms: coarsener colocation groups, sized so a region packs several.
    // Target ~6 atoms per region so packing has granularity to respect the
    // cap without large underfill; the coarsener may stop earlier when no
    // safe merges remain, which only makes atoms finer.
    let want_regions = n.div_ceil(cap);
    let atom_target = (want_regions * 6).max(24);
    let coarsening = coarsen(graph, &CoarsenConfig::to_target(atom_target));
    let atoms = coarsening.coarse();

    // Pack atoms into regions in coarse topological order. An oversized
    // atom (the coarsener keeps merged groups intact) gets its own region.
    let mut current: Vec<OpId> = Vec::new();
    for &c in atoms.topo_order() {
        let members = coarsening.members(c);
        if !current.is_empty() && current.len() + members.len() > cap {
            regions.push(make_region(
                graph,
                regions.len(),
                std::mem::take(&mut current),
                &on_cp,
            ));
        }
        current.extend_from_slice(members);
    }
    if !current.is_empty() {
        regions.push(make_region(graph, regions.len(), current, &on_cp));
    }
    finish(graph, regions)
}

fn make_region(
    graph: &FrozenGraph,
    index: usize,
    mut members: Vec<OpId>,
    on_cp: &dyn Fn(usize) -> bool,
) -> Region {
    members.sort_unstable();
    let cp_weight_us = members
        .iter()
        .filter(|&&v| on_cp(v.index()))
        .map(|&v| graph.op(v).compute_us())
        .sum();
    Region {
        index,
        members,
        cp_weight_us,
    }
}

fn finish(graph: &FrozenGraph, regions: Vec<Region>) -> PartitionResult {
    let mut region_of = vec![u32::MAX; graph.op_count()];
    for r in &regions {
        for &v in &r.members {
            debug_assert_eq!(region_of[v.index()], u32::MAX, "op in two regions");
            region_of[v.index()] = r.index as u32;
        }
    }
    debug_assert!(region_of.iter().all(|&r| r != u32::MAX), "unassigned op");
    let mut cut_edges = 0;
    let mut cut_bytes = 0u64;
    for &(u, v, bytes) in graph.edges() {
        if region_of[u.index()] != region_of[v.index()] {
            cut_edges += 1;
            cut_bytes += bytes;
        }
    }
    PartitionResult {
        regions,
        region_of,
        cut_edges,
        cut_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::{DeviceKind, OpGraph};

    fn grid(layers: usize, width: usize) -> FrozenGraph {
        let mut g = OpGraph::new("grid");
        let mut prev: Vec<OpId> = Vec::new();
        for l in 0..layers {
            let row: Vec<OpId> = (0..width)
                .map(|w| g.add_op(format!("l{l}w{w}"), DeviceKind::Gpu, 10.0, 64))
                .collect();
            for (i, &v) in row.iter().enumerate() {
                if let Some(&p) = prev.get(i) {
                    g.add_edge(p, v, 128).unwrap();
                }
                if i > 0 && l > 0 {
                    g.add_edge(prev[i - 1], v, 64).unwrap();
                }
            }
            prev = row;
        }
        g.freeze().unwrap()
    }

    #[test]
    fn every_op_in_exactly_one_region() {
        let g = grid(20, 8);
        let p = partition(&g, 30);
        let mut seen = vec![0usize; g.op_count()];
        for r in &p.regions {
            assert!(!r.members.is_empty());
            assert!(r.members.len() <= 30 || p.regions.len() == 1);
            for &v in &r.members {
                seen[v.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn small_graph_is_one_region() {
        let g = grid(3, 3);
        let p = partition(&g, 100);
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.cut_edges, 0);
        assert_eq!(p.regions[0].members.len(), 9);
    }

    #[test]
    fn partition_is_deterministic() {
        let g = grid(20, 8);
        let a = partition(&g, 40);
        let b = partition(&g, 40);
        assert_eq!(a.regions.len(), b.regions.len());
        for (ra, rb) in a.regions.iter().zip(&b.regions) {
            assert_eq!(ra.members, rb.members);
        }
        assert_eq!(a.cut_edges, b.cut_edges);
        assert_eq!(a.cut_bytes, b.cut_bytes);
    }

    #[test]
    fn cut_stats_match_region_map() {
        let g = grid(12, 6);
        let p = partition(&g, 20);
        let mut cut = 0;
        let mut bytes = 0;
        for &(u, v, b) in g.edges() {
            if p.region_of[u.index()] != p.region_of[v.index()] {
                cut += 1;
                bytes += b;
            }
        }
        assert_eq!(p.cut_edges, cut);
        assert_eq!(p.cut_bytes, bytes);
        assert!(p.cut_edges > 0, "a multi-region grid must cut something");
    }

    #[test]
    fn critical_chain_concentrates_weight() {
        // A heavy chain with light fan-outs: the chain is the critical
        // path, so regions containing it get all the weight.
        let mut g = OpGraph::new("chain");
        let mut prev = g.add_op("c0", DeviceKind::Gpu, 100.0, 8);
        for i in 1..12 {
            let c = g.add_op(format!("c{i}"), DeviceKind::Gpu, 100.0, 8);
            g.add_edge(prev, c, 64).unwrap();
            let side = g.add_op(format!("s{i}"), DeviceKind::Gpu, 1.0, 8);
            g.add_edge(prev, side, 64).unwrap();
            prev = c;
        }
        let g = g.freeze().unwrap();
        let p = partition(&g, 8);
        assert!(p.regions.len() > 1);
        let total: f64 = p.regions.iter().map(|r| r.cp_weight_us).sum();
        assert!((total - 1200.0).abs() < 1e-6, "got {total}");
    }
}
