//! Prometheus text-format exposition (format version 0.0.4).
//!
//! Renders the registry of an enabled [`Obs`] as `# HELP`/`# TYPE`
//! families: counters (suffixed `_total` per convention), gauges, and
//! histograms with cumulative `_bucket{le="..."}` series over a fixed
//! log-spaced bound set plus `_sum`/`_count`. Dotted metric names are
//! sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset
//! ([`sanitize_prom_name`]); optional constant labels are sorted by key
//! and label values escaped per the exposition spec (`\\`, `\"`, `\n`).
//!
//! Like every exporter in this crate the output is hand-written — no
//! dependencies — and computed entirely at scrape time, so recording
//! paths stay untouched.

use std::fmt::Write as _;

use crate::Obs;

/// Histogram bucket upper bounds used for every exposed histogram, in
/// the unit the samples were recorded in (the serve latency histograms
/// record milliseconds). Log-spaced 1-2.5-5 decades; `+Inf` is always
/// appended. Raw samples are kept until export, so changing this table
/// re-buckets history — no restart or re-record needed.
pub(crate) const BUCKET_BOUNDS: [f64; 14] = [
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Maps an internal dotted metric name (`serve.jobs.submitted`) onto the
/// Prometheus name charset: every character outside `[a-zA-Z0-9_:]`
/// becomes `_`, and a leading digit gets a `_` prefix. Distinct internal
/// names can collide after sanitization; pick registry names that don't.
pub fn sanitize_prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sorted label set as `{k="v",...}`; `extra` (the `le` bucket
/// label) is appended last. Empty input renders as an empty string.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_prom_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// A float in exposition format: `+Inf`/`-Inf`/`NaN` are legal sample
/// values there (unlike JSON).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_family(out: &mut String, name: &str, raw: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} Pesto {kind} '{raw}'.");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn write_histogram(
    out: &mut String,
    name: &str,
    raw: &str,
    samples: &[f64],
    labels: &[(String, String)],
) {
    write_family(out, name, raw, "histogram");
    for bound in BUCKET_BOUNDS {
        let cumulative = samples.iter().filter(|&&v| v <= bound).count();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(labels, Some(("le", &prom_f64(bound)))),
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(labels, Some(("le", "+Inf"))),
        samples.len(),
    );
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        label_block(labels, None),
        prom_f64(samples.iter().sum()),
    );
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        label_block(labels, None),
        samples.len(),
    );
}

impl Obs {
    /// Prometheus text-format exposition of the registry: counters
    /// (`_total`-suffixed), gauges, and histograms with cumulative
    /// buckets. Families appear in sorted (BTreeMap) order, so the output
    /// is deterministic for a given registry state. A disabled handle
    /// exposes nothing (an empty, still-valid document).
    pub fn prometheus_text(&self) -> String {
        self.prometheus_text_with_labels(&[])
    }

    /// Like [`Obs::prometheus_text`] but attaching `labels` to every
    /// sample (e.g. `[("instance", addr)]`). Labels are sorted by key;
    /// values are escaped per the exposition format.
    pub fn prometheus_text_with_labels(&self, labels: &[(&str, &str)]) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let labels = sorted;

        let mut out = String::new();
        let registry = crate::lock_recover(&inner.registry);
        for (raw, value) in &registry.counters {
            let name = format!("{}_total", sanitize_prom_name(raw));
            write_family(&mut out, &name, raw, "counter");
            let _ = writeln!(out, "{name}{} {value}", label_block(&labels, None));
        }
        for (raw, value) in &registry.gauges {
            let name = sanitize_prom_name(raw);
            write_family(&mut out, &name, raw, "gauge");
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_block(&labels, None),
                prom_f64(*value)
            );
        }
        for (raw, samples) in &registry.histograms {
            let name = sanitize_prom_name(raw);
            write_histogram(&mut out, &name, raw, samples, &labels);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_the_prometheus_charset() {
        assert_eq!(
            sanitize_prom_name("serve.jobs.submitted"),
            "serve_jobs_submitted"
        );
        assert_eq!(sanitize_prom_name("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize_prom_name("9lives"), "_9lives");
        assert_eq!(sanitize_prom_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_prom_name(""), "_");
    }

    #[test]
    fn disabled_handle_exposes_nothing() {
        assert_eq!(Obs::disabled().prometheus_text(), "");
    }

    /// Golden test for the full exposition: name sanitization, `_total`
    /// suffixing, label ordering (sorted by key, `le` last), label-value
    /// escaping, and cumulative histogram buckets. Deterministic because
    /// nothing here reads the clock.
    #[test]
    fn golden_prometheus_exposition() {
        let obs = Obs::enabled();
        obs.counter_add("serve.jobs.submitted", 7);
        obs.gauge_set("serve.queue_depth", 3.0);
        // Exactly-representable samples so the `_sum` line is stable.
        for v in [0.25, 2.0, 2.5, 40.0, 20_000.0] {
            obs.observe("serve.job_duration_ms", v);
        }
        // Labels given out of order, with every escapable character in
        // the value.
        let text = obs.prometheus_text_with_labels(&[
            ("zone", "b\"ack\\slash\nline"),
            ("instance", "127.0.0.1:0"),
        ]);
        let expected = concat!(
            "# HELP serve_jobs_submitted_total Pesto counter 'serve.jobs.submitted'.\n",
            "# TYPE serve_jobs_submitted_total counter\n",
            "serve_jobs_submitted_total{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\"} 7\n",
            "# HELP serve_queue_depth Pesto gauge 'serve.queue_depth'.\n",
            "# TYPE serve_queue_depth gauge\n",
            "serve_queue_depth{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\"} 3\n",
            "# HELP serve_job_duration_ms Pesto histogram 'serve.job_duration_ms'.\n",
            "# TYPE serve_job_duration_ms histogram\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"0.5\"} 1\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"1\"} 1\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"2.5\"} 3\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"5\"} 3\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"10\"} 3\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"25\"} 3\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"50\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"100\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"250\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"500\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"1000\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"2500\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"5000\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"10000\"} 4\n",
            "serve_job_duration_ms_bucket{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\",le=\"+Inf\"} 5\n",
            "serve_job_duration_ms_sum{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\"} 20044.75\n",
            "serve_job_duration_ms_count{instance=\"127.0.0.1:0\",zone=\"b\\\"ack\\\\slash\\nline\"} 5\n",
        );
        assert_eq!(text, expected);
    }

    #[test]
    fn unlabelled_output_has_no_brace_block() {
        let obs = Obs::enabled();
        obs.counter_add("c", 1);
        obs.gauge_set("g", f64::INFINITY);
        let text = obs.prometheus_text();
        assert!(text.contains("c_total 1\n"));
        assert!(text.contains("g +Inf\n"));
        assert!(!text.contains('{'));
    }
}
