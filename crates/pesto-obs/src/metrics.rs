//! Counter / gauge / histogram registry.
//!
//! `BTreeMap`s keep export order deterministic. Histograms store raw
//! samples; percentiles are computed once at export time
//! ([`crate::HistogramStats::from_samples`]), which keeps the record path
//! to a push.

use std::collections::BTreeMap;

/// The metric store behind an enabled [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Vec<f64>>,
}

impl Registry {
    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    pub(crate) fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub(crate) fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }
}
