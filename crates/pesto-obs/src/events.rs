//! Solver-progress event stream.

/// One timestamped solver-progress event.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverEvent {
    /// Microseconds since the sink epoch.
    pub t_us: f64,
    /// Emitting component, e.g. `"milp"`, `"hybrid"`, `"pipeline"`.
    pub source: String,
    /// What happened.
    pub kind: SolverEventKind,
}

/// The payload of a [`SolverEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolverEventKind {
    /// A new incumbent (best feasible solution) was found.
    Incumbent {
        /// Objective value of the new incumbent.
        objective: f64,
    },
    /// A bound/gap sample from branch-and-bound.
    Gap {
        /// Current incumbent objective (`f64::INFINITY` before the first
        /// feasible solution).
        incumbent: f64,
        /// Best (lower) bound proven so far.
        best_bound: f64,
        /// `|incumbent - best_bound| / max(1, |incumbent|)` — the same
        /// convention as `MilpSolution::gap`.
        relative_gap: f64,
        /// Branch-and-bound nodes explored so far.
        nodes_explored: u64,
    },
    /// A progress sample from the simulated-annealing hybrid solver.
    Anneal {
        /// Restart index (each restart is an independent chain).
        restart: u64,
        /// Iteration within the restart.
        iteration: u64,
        /// Current annealing temperature.
        temperature: f64,
        /// Fraction of recently proposed moves that were accepted.
        accept_rate: f64,
        /// Best cost seen by this chain so far.
        best_cost: f64,
    },
    /// The pipeline degraded to a cheaper strategy under its time budget.
    Degradation {
        /// `Debug`-formatted `DegradationReason` variant name.
        reason: String,
        /// Deadline slack remaining when the degradation fired, in
        /// microseconds (0 when the budget was already exhausted).
        remaining_deadline_us: f64,
    },
    /// Observed per-op compute times drifted from the fitted profile far
    /// enough to trigger (or justify) re-placement.
    Drift {
        /// Number of ops whose drift exceeded the dispersion threshold.
        ops_flagged: u64,
        /// Largest relative drift `|observed - expected| / expected` seen.
        max_drift_frac: f64,
        /// The relative-drift threshold the flagged ops exceeded.
        threshold_frac: f64,
    },
}

impl SolverEventKind {
    /// Short machine-readable tag for exporters (`"incumbent"`, `"gap"`,
    /// `"anneal"`, `"degradation"`, `"drift"`).
    pub fn tag(&self) -> &'static str {
        match self {
            SolverEventKind::Incumbent { .. } => "incumbent",
            SolverEventKind::Gap { .. } => "gap",
            SolverEventKind::Anneal { .. } => "anneal",
            SolverEventKind::Degradation { .. } => "degradation",
            SolverEventKind::Drift { .. } => "drift",
        }
    }
}
