//! Exporters: Chrome trace JSON, flat metrics JSON, and a text summary.
//!
//! All JSON is hand-written (this crate is dependency-free). Non-finite
//! floats — e.g. the incumbent objective before the first feasible
//! solution — are emitted as `null`, which both `chrome://tracing` and
//! ordinary JSON parsers accept.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Obs, SolverEvent, SolverEventKind, SpanRecord};

/// Percentile summary of one histogram, computed at export time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramStats {
    /// Summarises raw samples; returns `None` for an empty set.
    pub fn from_samples(samples: &[f64]) -> Option<HistogramStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let nearest = |p: f64| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(HistogramStats {
            count: sorted.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: nearest(50.0),
            p95: nearest(95.0),
            p99: nearest(99.0),
        })
    }
}

/// Total wall time spent in spans of one name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    /// Number of spans recorded under this name.
    pub count: usize,
    /// Sum of their durations in microseconds.
    pub total_us: f64,
}

/// A point-in-time copy of everything an enabled [`Obs`] recorded,
/// with histograms reduced to percentile summaries.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramStats>,
    /// Per-span-name wall-time totals.
    pub span_totals: BTreeMap<String, SpanTotal>,
}

/// One timestamped metric snapshot retained by the flight recorder
/// ([`Obs::record_flight_snapshot`]).
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// When the snapshot was taken, µs since the sink epoch.
    pub t_us: f64,
    /// The metric state at that moment.
    pub metrics: MetricsSnapshot,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` when non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn span_args_json(span: &SpanRecord) -> String {
    let fields: Vec<String> = span
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn event_fields(kind: &SolverEventKind) -> Vec<(&'static str, String)> {
    match kind {
        SolverEventKind::Incumbent { objective } => {
            vec![("objective", json_f64(*objective))]
        }
        SolverEventKind::Gap {
            incumbent,
            best_bound,
            relative_gap,
            nodes_explored,
        } => vec![
            ("incumbent", json_f64(*incumbent)),
            ("best_bound", json_f64(*best_bound)),
            ("relative_gap", json_f64(*relative_gap)),
            ("nodes_explored", format!("{nodes_explored}")),
        ],
        SolverEventKind::Anneal {
            restart,
            iteration,
            temperature,
            accept_rate,
            best_cost,
        } => vec![
            ("restart", format!("{restart}")),
            ("iteration", format!("{iteration}")),
            ("temperature", json_f64(*temperature)),
            ("accept_rate", json_f64(*accept_rate)),
            ("best_cost", json_f64(*best_cost)),
        ],
        SolverEventKind::Degradation {
            reason,
            remaining_deadline_us,
        } => vec![
            ("reason", format!("\"{}\"", json_escape(reason))),
            ("remaining_deadline_us", json_f64(*remaining_deadline_us)),
        ],
        SolverEventKind::Drift {
            ops_flagged,
            max_drift_frac,
            threshold_frac,
        } => vec![
            ("ops_flagged", format!("{ops_flagged}")),
            ("max_drift_frac", json_f64(*max_drift_frac)),
            ("threshold_frac", json_f64(*threshold_frac)),
        ],
    }
}

fn span_json(span: &SpanRecord) -> String {
    format!(
        "{{\"name\":\"{}\",\"tid\":{},\"start_us\":{},\"dur_us\":{},\"args\":{}}}",
        json_escape(&span.name),
        span.tid,
        json_f64(span.start_us),
        json_f64(span.dur_us),
        span_args_json(span),
    )
}

/// Compact one-line JSON of a [`MetricsSnapshot`] (histograms reduced to
/// percentile summaries), shared by the flight recorder's snapshot ring
/// and its current-state section.
fn metrics_snapshot_json(s: &MetricsSnapshot) -> String {
    let counters: Vec<String> = s
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
        .collect();
    let gauges: Vec<String> = s
        .gauges
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
        .collect();
    let histograms: Vec<String> = s
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "\"{}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_escape(k),
                h.count,
                json_f64(h.mean),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99),
                json_f64(h.max),
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
    )
}

fn event_json(event: &SolverEvent) -> String {
    let mut fields = vec![
        ("t_us".to_string(), json_f64(event.t_us)),
        (
            "source".to_string(),
            format!("\"{}\"", json_escape(&event.source)),
        ),
        ("kind".to_string(), format!("\"{}\"", event.kind.tag())),
    ];
    for (k, v) in event_fields(&event.kind) {
        fields.push((k.to_string(), v));
    }
    let body: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Chrome-trace counter track for an event kind, if it maps to one.
fn counter_track(kind: &SolverEventKind) -> Option<(&'static str, Vec<(&'static str, f64)>)> {
    match kind {
        SolverEventKind::Gap {
            incumbent,
            best_bound,
            relative_gap,
            ..
        } => Some((
            "solver gap",
            vec![
                ("incumbent", *incumbent),
                ("best_bound", *best_bound),
                ("relative_gap", *relative_gap),
            ],
        )),
        SolverEventKind::Anneal {
            temperature,
            accept_rate,
            ..
        } => Some((
            "anneal",
            vec![("temperature", *temperature), ("accept_rate", *accept_rate)],
        )),
        _ => None,
    }
}

impl Obs {
    /// Everything recorded so far, with histograms summarised. Empty when
    /// the handle is disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let registry = crate::lock_recover(&inner.registry);
        let mut snapshot = MetricsSnapshot {
            counters: registry.counters.clone(),
            gauges: registry.gauges.clone(),
            ..MetricsSnapshot::default()
        };
        for (name, samples) in &registry.histograms {
            if let Some(stats) = HistogramStats::from_samples(samples) {
                snapshot.histograms.insert(name.clone(), stats);
            }
        }
        drop(registry);
        for span in crate::lock_recover(&inner.spans).iter() {
            let entry = snapshot
                .span_totals
                .entry(span.name.clone())
                .or_insert(SpanTotal {
                    count: 0,
                    total_us: 0.0,
                });
            entry.count += 1;
            entry.total_us += span.dur_us;
        }
        snapshot
    }

    /// Chrome trace-event JSON (`{"traceEvents": [...]}`) covering the
    /// recorded pipeline spans plus counter tracks for solver gap and
    /// annealing progress. Load it in `chrome://tracing` or Perfetto.
    /// Returns an empty (but still valid) trace when disabled.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"pesto pipeline\"}}"
                .to_string(),
        );
        // One thread_name metadata event per lane that recorded spans, so
        // worker pools (shard regions, B&B workers) render as named rows
        // instead of anonymous tids. Lanes named via `Obs::name_lane` use
        // that name; the rest fall back to `lane-<tid>`.
        let spans = self.spans();
        let names = self.lane_names();
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let name = names
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| format!("lane-{tid}"));
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&name),
            ));
        }
        for span in spans {
            events.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":0,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{}}}",
                json_escape(&span.name),
                span.tid,
                span.start_us,
                span.dur_us,
                span_args_json(&span),
            ));
        }
        for event in self.solver_events() {
            let Some((track, series)) = counter_track(&event.kind) else {
                continue;
            };
            let args: Vec<String> = series
                .iter()
                .filter(|(_, v)| v.is_finite())
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect();
            if args.is_empty() {
                continue;
            }
            events.push(format!(
                "{{\"ph\":\"C\",\"name\":\"{} ({})\",\"pid\":0,\"tid\":0,\
                 \"ts\":{:.3},\"args\":{{{}}}}}",
                json_escape(track),
                json_escape(&event.source),
                event.t_us,
                args.join(","),
            ));
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Flat JSON metrics document: counters, gauges, histogram
    /// percentiles, per-span wall-time totals, and the full solver event
    /// stream. Returns an empty document when disabled.
    pub fn metrics_json(&self) -> String {
        let snapshot = self.metrics_snapshot();
        let mut out = String::from("{\n");

        let counters: Vec<String> = snapshot
            .counters
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), v))
            .collect();
        let _ = write!(out, "  \"counters\": {{\n{}\n  }},\n", counters.join(",\n"));

        let gauges: Vec<String> = snapshot
            .gauges
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), json_f64(*v)))
            .collect();
        let _ = write!(out, "  \"gauges\": {{\n{}\n  }},\n", gauges.join(",\n"));

        let histograms: Vec<String> = snapshot
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json_escape(k),
                    h.count,
                    json_f64(h.min),
                    json_f64(h.max),
                    json_f64(h.mean),
                    json_f64(h.p50),
                    json_f64(h.p95),
                    json_f64(h.p99),
                )
            })
            .collect();
        let _ = write!(
            out,
            "  \"histograms\": {{\n{}\n  }},\n",
            histograms.join(",\n")
        );

        let spans: Vec<String> = snapshot
            .span_totals
            .iter()
            .map(|(k, s)| {
                format!(
                    "    \"{}\": {{\"count\": {}, \"total_us\": {}}}",
                    json_escape(k),
                    s.count,
                    json_f64(s.total_us),
                )
            })
            .collect();
        let _ = write!(out, "  \"spans\": {{\n{}\n  }},\n", spans.join(",\n"));

        let events: Vec<String> = self
            .solver_events()
            .iter()
            .map(|e| format!("    {}", event_json(e)))
            .collect();
        let _ = write!(out, "  \"solver_events\": [\n{}\n  ]\n", events.join(",\n"));

        out.push_str("}\n");
        out
    }

    /// The flight-recorder dump: a single JSON document with the newest
    /// retained spans and solver events (at most
    /// [`crate::FLIGHT_DUMP_TAIL`] each), the timestamped metric-snapshot
    /// ring, the lane-name table, eviction counts, and the current metric
    /// state. Served by `pesto-serve` at `GET /debug/flight`, fetched by
    /// `pesto obs dump`, and written on panic by
    /// [`Obs::install_panic_hook`]. A disabled handle returns
    /// `{"enabled":false}` — rendering happens only on demand, so the
    /// steady-state cost of "having" a flight recorder is the rings'
    /// bounded memory, nothing more.
    pub fn flight_dump(&self) -> String {
        if !self.is_enabled() {
            return String::from("{\"enabled\":false}\n");
        }
        let lanes: Vec<String> = self
            .lane_names()
            .iter()
            .map(|(tid, name)| format!("\"{tid}\":\"{}\"", json_escape(name)))
            .collect();
        let spans: Vec<String> = self
            .span_tail(crate::FLIGHT_DUMP_TAIL)
            .iter()
            .map(span_json)
            .collect();
        let events: Vec<String> = self
            .event_tail(crate::FLIGHT_DUMP_TAIL)
            .iter()
            .map(event_json)
            .collect();
        let snapshots: Vec<String> = self
            .flight_snapshots()
            .iter()
            .map(|s| {
                format!(
                    "{{\"t_us\":{},\"metrics\":{}}}",
                    json_f64(s.t_us),
                    metrics_snapshot_json(&s.metrics),
                )
            })
            .collect();
        format!(
            "{{\"enabled\":true,\"captured_at_us\":{},\"dropped_spans\":{},\
             \"dropped_events\":{},\"lanes\":{{{}}},\"recent_spans\":[{}],\
             \"recent_events\":[{}],\"metric_snapshots\":[{}],\"metrics\":{}}}\n",
            json_f64(self.elapsed_us()),
            self.dropped_spans(),
            self.dropped_events(),
            lanes.join(","),
            spans.join(","),
            events.join(","),
            snapshots.join(","),
            metrics_snapshot_json(&self.metrics_snapshot()),
        )
    }

    /// Human-readable digest for `--verbose` output: span totals, counters,
    /// gauges, histogram percentiles, and an event-count-by-kind line.
    pub fn text_summary(&self) -> String {
        if !self.is_enabled() {
            return String::from("observability disabled\n");
        }
        let snapshot = self.metrics_snapshot();
        let mut out = String::new();
        out.push_str("-- spans (total wall time) --\n");
        for (name, total) in &snapshot.span_totals {
            let _ = writeln!(
                out,
                "  {:<28} {:>5}x {:>12.1} us",
                name, total.count, total.total_us
            );
        }
        if !snapshot.counters.is_empty() {
            out.push_str("-- counters --\n");
            for (name, value) in &snapshot.counters {
                let _ = writeln!(out, "  {name:<28} {value:>12}");
            }
        }
        if !snapshot.gauges.is_empty() {
            out.push_str("-- gauges --\n");
            for (name, value) in &snapshot.gauges {
                let _ = writeln!(out, "  {name:<28} {value:>12.4}");
            }
        }
        if !snapshot.histograms.is_empty() {
            out.push_str("-- histograms --\n");
            for (name, h) in &snapshot.histograms {
                let _ = writeln!(
                    out,
                    "  {:<28} n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
                    name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        let events = self.solver_events();
        if !events.is_empty() {
            let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
            for event in &events {
                *by_kind.entry(event.kind.tag()).or_insert(0) += 1;
            }
            let parts: Vec<String> = by_kind
                .iter()
                .map(|(kind, n)| format!("{kind}={n}"))
                .collect();
            let _ = writeln!(out, "-- solver events: {} --", parts.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = HistogramStats::from_samples(&samples).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p95, 95.0);
        assert_eq!(stats.p99, 99.0);
        assert!((stats.mean - 50.5).abs() < 1e-9);
        assert!(HistogramStats::from_samples(&[]).is_none());
    }

    #[test]
    fn chrome_trace_contains_span_and_counter_events() {
        let obs = Obs::enabled();
        {
            let mut s = obs.span("pipeline.solve");
            s.set_attr("ops", 7);
        }
        obs.solver_event(
            "milp",
            SolverEventKind::Gap {
                incumbent: 20.0,
                best_bound: 18.0,
                relative_gap: 0.1,
                nodes_explored: 4,
            },
        );
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("pipeline.solve"));
        assert!(trace.contains("\"ops\":\"7\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("solver gap"));
        assert!(trace.contains("\"ph\":\"M\""));
    }

    #[test]
    fn chrome_trace_skips_nonfinite_counters() {
        let obs = Obs::enabled();
        obs.solver_event(
            "milp",
            SolverEventKind::Gap {
                incumbent: f64::INFINITY,
                best_bound: 3.0,
                relative_gap: f64::INFINITY,
                nodes_explored: 1,
            },
        );
        let trace = obs.chrome_trace();
        assert!(!trace.contains("inf"));
        assert!(trace.contains("\"best_bound\":3"));
    }

    #[test]
    fn metrics_json_covers_all_sections() {
        let obs = Obs::enabled();
        obs.counter_add("milp.nodes", 3);
        obs.gauge_set("profile.r2", 0.99);
        obs.observe("sim.op_us", 5.0);
        obs.observe("sim.op_us", 15.0);
        drop(obs.span("pipeline.simulate"));
        obs.solver_event("hybrid", SolverEventKind::Incumbent { objective: 8.0 });
        obs.solver_event(
            "pipeline",
            SolverEventKind::Degradation {
                reason: "DeadlineDuringSearch".to_string(),
                remaining_deadline_us: 120.0,
            },
        );
        let json = obs.metrics_json();
        assert!(json.contains("\"milp.nodes\": 3"));
        assert!(json.contains("\"profile.r2\": 0.99"));
        assert!(json.contains("\"sim.op_us\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"pipeline.simulate\""));
        assert!(json.contains("\"kind\":\"incumbent\""));
        assert!(json.contains("\"reason\":\"DeadlineDuringSearch\""));
        assert!(json.contains("\"remaining_deadline_us\":120"));
    }

    #[test]
    fn nonfinite_values_export_as_null() {
        let obs = Obs::enabled();
        obs.solver_event(
            "milp",
            SolverEventKind::Gap {
                incumbent: f64::INFINITY,
                best_bound: 1.0,
                relative_gap: f64::INFINITY,
                nodes_explored: 0,
            },
        );
        let json = obs.metrics_json();
        assert!(json.contains("\"incumbent\":null"));
        assert!(json.contains("\"best_bound\":1"));
    }

    #[test]
    fn text_summary_mentions_each_section() {
        let obs = Obs::enabled();
        obs.counter_add("coarsen.rounds", 2);
        obs.gauge_set("profile.r2", 0.5);
        obs.observe("h", 1.0);
        drop(obs.span("pipeline.profile"));
        obs.solver_event("milp", SolverEventKind::Incumbent { objective: 1.0 });
        let text = obs.text_summary();
        assert!(text.contains("pipeline.profile"));
        assert!(text.contains("coarsen.rounds"));
        assert!(text.contains("profile.r2"));
        assert!(text.contains("incumbent=1"));
        assert_eq!(Obs::disabled().text_summary(), "observability disabled\n");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
