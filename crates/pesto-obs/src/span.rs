//! Timed spans: the RAII guard that records them and the stored record.

use std::fmt::Display;
use std::sync::Arc;
use std::time::Instant;

use crate::{current_lane, Inner};

/// A finished span as stored in the sink: name, thread lane, interval
/// relative to the sink epoch, and any attributes set while open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"milp.solve"`.
    pub name: String,
    /// Thread lane the span ran on (stable per OS thread).
    pub tid: u64,
    /// Start time in microseconds since the sink epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// RAII guard for an open span; records a [`SpanRecord`] on drop. Obtained
/// from [`crate::Obs::span`] or the [`crate::span!`] macro. A guard from a
/// disabled handle carries no state and its drop is free.
pub struct SpanGuard {
    state: Option<Open>,
}

struct Open {
    inner: Arc<Inner>,
    name: String,
    started: Instant,
    attrs: Vec<(String, String)>,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard { state: None }
    }

    pub(crate) fn start(inner: Arc<Inner>, name: String) -> SpanGuard {
        SpanGuard {
            state: Some(Open {
                inner,
                name,
                started: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Attaches a key/value attribute. The value is formatted only when
    /// the span is actually recording.
    pub fn set_attr(&mut self, key: &str, value: impl Display) {
        if let Some(open) = &mut self.state {
            open.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.state.take() {
            let start_us = open.started.duration_since(open.inner.epoch).as_secs_f64() * 1e6;
            let dur_us = open.started.elapsed().as_secs_f64() * 1e6;
            let record = SpanRecord {
                name: open.name,
                tid: current_lane(),
                start_us,
                dur_us,
                attrs: open.attrs,
            };
            crate::lock_recover(&open.inner.spans).push(record);
        }
    }
}
