//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheaply cloneable flag shared between a
//! controller (a CLI signal handler, the `pesto-serve` job manager) and
//! the solver threads doing the work. Solvers poll it at the same
//! cooperative boundaries where they poll their wall-clock deadlines —
//! between annealing iterations, between branch-and-bound nodes, between
//! pipeline stages — and bail out with a typed `Cancelled` error.
//!
//! Unlike a deadline (which truncates the search but still returns the
//! best incumbent), cancellation means the caller no longer wants *any*
//! result: the solve returns an error, no further checkpoint snapshots
//! are written, and nothing is published to the checkpoint sink after
//! the flag is observed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cooperative cancellation flag.
///
/// Clones observe the same flag; [`CancelToken::cancel`] is idempotent
/// and cannot be undone. The default token is not cancelled.
///
/// ```
/// use pesto_obs::CancelToken;
///
/// let token = CancelToken::new();
/// let solver_side = token.clone();
/// assert!(!solver_side.is_cancelled());
/// token.cancel();
/// assert!(solver_side.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Raises the flag. Every clone of this token observes it; there is
    /// no way to lower it again.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn default_is_not_cancelled() {
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent_and_visible_across_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || {
            remote.cancel();
            remote.cancel();
        })
        .join()
        .unwrap();
        assert!(token.is_cancelled());
    }
}
