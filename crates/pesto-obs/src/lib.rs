//! # pesto-obs: tracing, metrics, and solver-progress telemetry
//!
//! The placement pipeline (profiling → coarsening → ILP formulation → MILP
//! branch-and-bound → hybrid annealing → simulation) historically ran dark:
//! only the final `SimReport` was observable. This crate provides the three
//! primitives every stage now reports through:
//!
//! * **Spans** — hierarchical timed sections with key/value attributes
//!   ([`Obs::span`], or the [`span!`] macro). Nesting is implicit: spans
//!   carry a thread lane and wall-clock interval, which is exactly what the
//!   Chrome trace viewer uses to reconstruct the hierarchy.
//! * **Metrics** — counters, gauges, and histograms (p50/p95/p99 at export
//!   time) in a registry shared by cheap [`Obs`] handles.
//! * **Solver-progress events** — a timestamped stream of incumbent /
//!   best-bound / relative-gap samples from branch-and-bound, annealing
//!   temperature and accept-rate from the hybrid solver, and degradation
//!   events from the deadline ladder ([`Obs::solver_event`]).
//!
//! ## The no-op contract
//!
//! [`Obs::disabled`] (also [`Obs::default`]) is a handle with **no backing
//! storage**: every recording method is a single branch on an `Option` and
//! every span is guaranteed not to allocate or read the clock. Instrumented
//! hot paths (per-B&B-node, per-annealing-iteration) therefore cost nothing
//! measurable unless a sink was explicitly enabled — see the
//! `obs_overhead` benchmark in the `pesto-bench` crate.
//!
//! ## Exporters
//!
//! * [`Obs::chrome_trace`] — Chrome trace-event JSON for the *pipeline
//!   itself* (open in `chrome://tracing` or <https://ui.perfetto.dev>),
//!   complementing the simulator's per-plan trace
//!   (`pesto_sim::SimReport::to_chrome_trace`).
//! * [`Obs::metrics_json`] — flat JSON dump of counters, gauges, histogram
//!   percentiles, per-span wall-time totals, and the solver event stream.
//! * [`Obs::text_summary`] — a human-readable digest for `--verbose`.
//!
//! ```
//! use pesto_obs::{Obs, SolverEventKind};
//!
//! let obs = Obs::enabled();
//! {
//!     let mut span = obs.span("milp.solve");
//!     span.set_attr("vars", 42);
//!     obs.counter_add("milp.nodes", 1);
//!     obs.solver_event(
//!         "milp",
//!         SolverEventKind::Gap {
//!             incumbent: 10.0,
//!             best_bound: 9.5,
//!             relative_gap: 0.05,
//!             nodes_explored: 1,
//!         },
//!     );
//! }
//! assert!(obs.chrome_trace().contains("milp.solve"));
//! assert!(obs.metrics_json().contains("milp.nodes"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod events;
mod export;
mod metrics;
mod span;

pub use cancel::CancelToken;
pub use events::{SolverEvent, SolverEventKind};
pub use export::{HistogramStats, MetricsSnapshot, SpanTotal};
pub use metrics::Registry;
pub use span::{SpanGuard, SpanRecord};

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide thread-lane allocator: each OS thread gets a stable small
/// integer used as the `tid` of the spans it records.
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn current_lane() -> u64 {
    LANE.with(|l| *l)
}

/// Default cap on retained solver-progress events
/// ([`Obs::enabled_with_event_capacity`] overrides it). Sized so a day of
/// sampled solver telemetry fits, while bounding a long-running daemon's
/// memory: each event is ~100 bytes, so the default ring tops out around
/// 6 MB per enabled handle.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Bounded solver-event stream: a ring that evicts the oldest events once
/// `capacity` is reached, tracking how many were evicted so exporters and
/// incremental readers can report the loss instead of hiding it.
pub(crate) struct EventRing {
    buf: VecDeque<SolverEvent>,
    capacity: usize,
    /// Events evicted so far; also the sequence number of `buf[0]`.
    evicted: u64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            // A zero capacity would make every push an immediate silent
            // drop; retain at least one event so the stream stays usable.
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    fn push(&mut self, event: SolverEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(event);
    }

    fn snapshot(&self) -> Vec<SolverEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Events with sequence number `>= seq`, plus the next sequence
    /// number to poll from. Sequence numbers count every event ever
    /// pushed, so a reader that falls behind the ring simply resumes at
    /// the oldest retained event (the gap shows up in
    /// [`Obs::dropped_events`]).
    fn since(&self, seq: u64) -> (u64, Vec<SolverEvent>) {
        let next = self.evicted + self.buf.len() as u64;
        let skip = seq.saturating_sub(self.evicted).min(self.buf.len() as u64) as usize;
        (next, self.buf.iter().skip(skip).cloned().collect())
    }
}

/// Shared storage behind an enabled [`Obs`] handle.
pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) registry: Mutex<Registry>,
    pub(crate) events: Mutex<EventRing>,
}

/// A cheap, clonable observability handle.
///
/// The default handle is a **no-op sink**: recording costs one branch and
/// exporters return empty documents. [`Obs::enabled`] allocates shared
/// storage; clones of an enabled handle all feed the same sink, so a single
/// `Obs` can be threaded through the whole pipeline (including across the
/// hybrid solver's worker threads — all methods take `&self` and the
/// storage is mutex-protected).
#[derive(Clone, Default)]
pub struct Obs {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// An enabled handle with fresh storage; its epoch (t=0 of every
    /// exported timestamp) is the moment of this call. The solver-event
    /// stream is bounded at [`DEFAULT_EVENT_CAPACITY`]; long-running
    /// daemons can size it explicitly with
    /// [`Obs::enabled_with_event_capacity`].
    pub fn enabled() -> Obs {
        Obs::enabled_with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose solver-event ring retains at most
    /// `capacity` events (at least 1). Once full, the oldest events are
    /// evicted — [`Obs::dropped_events`] counts the loss — so an
    /// always-on handle in a daemon cannot grow without bound. Spans and
    /// metrics are aggregates and stay as-is.
    pub fn enabled_with_event_capacity(capacity: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                registry: Mutex::new(Registry::default()),
                events: Mutex::new(EventRing::new(capacity)),
            })),
        }
    }

    /// The no-op handle (same as [`Obs::default`]).
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this handle records anything. Use to skip *preparing*
    /// expensive attribute values; the recording methods already no-op.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the handle was enabled (0 when disabled).
    pub fn elapsed_us(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.epoch.elapsed().as_secs_f64() * 1e6)
    }

    /// Opens a timed span; it records itself when dropped. Prefer the
    /// [`span!`] macro when also setting attributes.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => SpanGuard::start(Arc::clone(inner), name.into()),
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().counter_add(name, delta);
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().gauge_set(name, value);
        }
    }

    /// Records one sample into the named histogram (percentiles are
    /// computed at export time).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().observe(name, value);
        }
    }

    /// Appends a timestamped solver-progress event from `source` (e.g.
    /// `"milp"`, `"hybrid"`, `"pipeline"`).
    pub fn solver_event(&self, source: &str, kind: SolverEventKind) {
        if let Some(inner) = &self.inner {
            let event = SolverEvent {
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
                source: source.to_string(),
                kind,
            };
            inner.events.lock().unwrap().push(event);
        }
    }

    /// Snapshot of the retained solver-progress event stream (the ring
    /// may have evicted older events; see [`Obs::dropped_events`]).
    pub fn solver_events(&self) -> Vec<SolverEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.lock().unwrap().snapshot())
    }

    /// Incremental read for pollers (e.g. a job-status endpoint
    /// streaming solver progress): returns the events with sequence
    /// number `>= seq` plus the next sequence number to poll from.
    /// Sequence numbers count every event ever recorded on this handle,
    /// so `solver_events_since(0)` on a fresh handle returns everything,
    /// and a reader that falls behind the ring resumes at the oldest
    /// retained event. Disabled handles return `(0, [])`.
    pub fn solver_events_since(&self, seq: u64) -> (u64, Vec<SolverEvent>) {
        self.inner
            .as_ref()
            .map_or_else(|| (0, Vec::new()), |i| i.events.lock().unwrap().since(seq))
    }

    /// How many solver events the bounded ring has evicted so far (0 when
    /// disabled). Non-zero means [`Obs::solver_events`] is a suffix of
    /// the true stream.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.events.lock().unwrap().evicted)
    }

    /// Snapshot of all recorded spans so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.lock().unwrap().clone())
    }

    /// Current value of a counter (0 when absent or disabled). Mostly for
    /// tests and the text summary.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.registry.lock().unwrap().counter(name))
    }

    /// Latest value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|i| i.registry.lock().unwrap().gauge(name))
    }
}

/// Opens a span on an [`Obs`] handle, optionally setting attributes:
///
/// ```
/// use pesto_obs::{span, Obs};
/// let obs = Obs::enabled();
/// let _guard = span!(obs, "coarsen", ops_before = 100, ops_after = 10);
/// ```
///
/// Attribute values are only formatted when the handle is enabled.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $obs.span($name);
        $(guard.set_attr(stringify!($key), $value);)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        {
            let mut s = obs.span("x");
            s.set_attr("k", 1);
        }
        obs.counter_add("c", 5);
        obs.gauge_set("g", 1.0);
        obs.observe("h", 2.0);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        assert!(!obs.is_enabled());
        assert!(obs.spans().is_empty());
        assert!(obs.solver_events().is_empty());
        assert_eq!(obs.counter("c"), 0);
        assert_eq!(obs.gauge("g"), None);
        assert_eq!(obs.elapsed_us(), 0.0);
    }

    #[test]
    fn clones_share_one_sink() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter_add("shared", 2);
        obs.counter_add("shared", 3);
        assert_eq!(obs.counter("shared"), 5);
        drop(clone.span("from-clone"));
        assert_eq!(obs.spans().len(), 1);
    }

    #[test]
    fn span_records_duration_and_attrs() {
        let obs = Obs::enabled();
        {
            let mut s = span!(obs, "work", items = 3);
            s.set_attr("phase", "late");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].dur_us >= 0.0);
        assert!(spans[0].start_us >= 0.0);
        assert_eq!(
            spans[0].attrs,
            vec![
                ("items".to_string(), "3".to_string()),
                ("phase".to_string(), "late".to_string()),
            ]
        );
    }

    #[test]
    fn events_are_timestamped_and_ordered() {
        let obs = Obs::enabled();
        obs.solver_event("milp", SolverEventKind::Incumbent { objective: 12.0 });
        obs.solver_event(
            "milp",
            SolverEventKind::Gap {
                incumbent: 12.0,
                best_bound: 11.0,
                relative_gap: 1.0 / 12.0,
                nodes_explored: 9,
            },
        );
        let events = obs.solver_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].t_us <= events[1].t_us);
        assert_eq!(events[0].source, "milp");
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts_drops() {
        let obs = Obs::enabled_with_event_capacity(3);
        for i in 0..5 {
            obs.solver_event(
                "hybrid",
                SolverEventKind::Incumbent {
                    objective: i as f64,
                },
            );
        }
        let events = obs.solver_events();
        assert_eq!(events.len(), 3, "ring retains only the newest 3");
        assert_eq!(obs.dropped_events(), 2);
        // The retained suffix is the newest events, in order.
        let objectives: Vec<f64> = events
            .iter()
            .map(|e| match e.kind {
                SolverEventKind::Incumbent { objective } => objective,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(objectives, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn incremental_reads_resume_where_they_left_off() {
        let obs = Obs::enabled_with_event_capacity(4);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 0.0 });
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        let (next, batch) = obs.solver_events_since(0);
        assert_eq!(next, 2);
        assert_eq!(batch.len(), 2);
        // No new events: empty batch, same cursor.
        let (next2, batch2) = obs.solver_events_since(next);
        assert_eq!(next2, 2);
        assert!(batch2.is_empty());
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 2.0 });
        let (next3, batch3) = obs.solver_events_since(next2);
        assert_eq!(next3, 3);
        assert_eq!(batch3.len(), 1);
    }

    #[test]
    fn a_lagging_reader_resumes_at_the_oldest_retained_event() {
        let obs = Obs::enabled_with_event_capacity(2);
        for i in 0..6 {
            obs.solver_event(
                "s",
                SolverEventKind::Incumbent {
                    objective: i as f64,
                },
            );
        }
        // Reader last saw seq 1, but events 0..=3 were evicted.
        let (next, batch) = obs.solver_events_since(1);
        assert_eq!(next, 6);
        assert_eq!(batch.len(), 2, "only the retained suffix is available");
        assert_eq!(obs.dropped_events(), 4);
        // A cursor ahead of the stream returns nothing (and stays put).
        let (next_ahead, empty) = obs.solver_events_since(100);
        assert_eq!(next_ahead, 6);
        assert!(empty.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let obs = Obs::enabled_with_event_capacity(0);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 2.0 });
        assert_eq!(obs.solver_events().len(), 1);
        assert_eq!(obs.dropped_events(), 1);
    }

    #[test]
    fn disabled_handle_event_ring_costs_nothing() {
        let obs = Obs::disabled();
        assert_eq!(obs.solver_events_since(0), (0, Vec::new()));
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn gauges_keep_latest_value() {
        let obs = Obs::enabled();
        obs.gauge_set("temp", 10.0);
        obs.gauge_set("temp", 4.0);
        assert_eq!(obs.gauge("temp"), Some(4.0));
    }
}
