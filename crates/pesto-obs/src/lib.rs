//! # pesto-obs: tracing, metrics, and solver-progress telemetry
//!
//! The placement pipeline (profiling → coarsening → ILP formulation → MILP
//! branch-and-bound → hybrid annealing → simulation) historically ran dark:
//! only the final `SimReport` was observable. This crate provides the three
//! primitives every stage now reports through:
//!
//! * **Spans** — hierarchical timed sections with key/value attributes
//!   ([`Obs::span`], or the [`span!`] macro). Nesting is implicit: spans
//!   carry a thread lane and wall-clock interval, which is exactly what the
//!   Chrome trace viewer uses to reconstruct the hierarchy.
//! * **Metrics** — counters, gauges, and histograms (p50/p95/p99 at export
//!   time) in a registry shared by cheap [`Obs`] handles.
//! * **Solver-progress events** — a timestamped stream of incumbent /
//!   best-bound / relative-gap samples from branch-and-bound, annealing
//!   temperature and accept-rate from the hybrid solver, and degradation
//!   events from the deadline ladder ([`Obs::solver_event`]).
//!
//! ## The no-op contract
//!
//! [`Obs::disabled`] (also [`Obs::default`]) is a handle with **no backing
//! storage**: every recording method is a single branch on an `Option` and
//! every span is guaranteed not to allocate or read the clock. Instrumented
//! hot paths (per-B&B-node, per-annealing-iteration) therefore cost nothing
//! measurable unless a sink was explicitly enabled — see the
//! `obs_overhead` benchmark in the `pesto-bench` crate.
//!
//! ## Exporters
//!
//! * [`Obs::chrome_trace`] — Chrome trace-event JSON for the *pipeline
//!   itself* (open in `chrome://tracing` or <https://ui.perfetto.dev>),
//!   complementing the simulator's per-plan trace
//!   (`pesto_sim::SimReport::to_chrome_trace`).
//! * [`Obs::metrics_json`] — flat JSON dump of counters, gauges, histogram
//!   percentiles, per-span wall-time totals, and the solver event stream.
//! * [`Obs::prometheus_text`] — Prometheus text-format exposition
//!   (counters/gauges/histograms with cumulative buckets), what
//!   `pesto-serve` serves at `GET /metrics`.
//! * [`Obs::flight_dump`] — the flight recorder: newest retained spans and
//!   events plus the timestamped metric-snapshot ring, for postmortems
//!   (`GET /debug/flight`, `pesto obs dump`, and
//!   [`Obs::install_panic_hook`]).
//! * [`Obs::text_summary`] — a human-readable digest for `--verbose`.
//!
//! ```
//! use pesto_obs::{Obs, SolverEventKind};
//!
//! let obs = Obs::enabled();
//! {
//!     let mut span = obs.span("milp.solve");
//!     span.set_attr("vars", 42);
//!     obs.counter_add("milp.nodes", 1);
//!     obs.solver_event(
//!         "milp",
//!         SolverEventKind::Gap {
//!             incumbent: 10.0,
//!             best_bound: 9.5,
//!             relative_gap: 0.05,
//!             nodes_explored: 1,
//!         },
//!     );
//! }
//! assert!(obs.chrome_trace().contains("milp.solve"));
//! assert!(obs.metrics_json().contains("milp.nodes"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod events;
mod export;
mod metrics;
mod prom;
mod span;

pub use cancel::CancelToken;
pub use events::{SolverEvent, SolverEventKind};
pub use export::{FlightSnapshot, HistogramStats, MetricsSnapshot, SpanTotal};
pub use metrics::Registry;
pub use prom::sanitize_prom_name;
pub use span::{SpanGuard, SpanRecord};

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide thread-lane allocator: each OS thread gets a stable small
/// integer used as the `tid` of the spans it records.
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn current_lane() -> u64 {
    LANE.with(|l| *l)
}

/// Default cap on retained solver-progress events
/// ([`Obs::enabled_with_event_capacity`] overrides it). Sized so a day of
/// sampled solver telemetry fits, while bounding a long-running daemon's
/// memory: each event is ~100 bytes, so the default ring tops out around
/// 6 MB per enabled handle.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Default cap on retained spans. Like the event ring, this bounds an
/// always-on daemon handle: once full, the oldest spans are evicted and
/// [`Obs::dropped_spans`] counts the loss. Aggregates
/// ([`Obs::metrics_snapshot`] span totals) are unaffected by eviction
/// only for the retained window — exporters report the drop count so a
/// truncated trace is never mistaken for a complete one.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// How many timestamped metric snapshots the flight recorder retains
/// ([`Obs::record_flight_snapshot`]).
pub const FLIGHT_SNAPSHOT_CAPACITY: usize = 32;

/// How many of the newest spans / solver events a flight-recorder dump
/// ([`Obs::flight_dump`]) includes. The retained rings may hold far more;
/// the dump is a postmortem digest, not an archive.
pub const FLIGHT_DUMP_TAIL: usize = 512;

/// Bounded solver-event stream: a ring that evicts the oldest events once
/// `capacity` is reached, tracking how many were evicted so exporters and
/// incremental readers can report the loss instead of hiding it.
pub(crate) struct EventRing {
    buf: VecDeque<SolverEvent>,
    capacity: usize,
    /// Events evicted so far; also the sequence number of `buf[0]`.
    evicted: u64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            // A zero capacity would make every push an immediate silent
            // drop; retain at least one event so the stream stays usable.
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    fn push(&mut self, event: SolverEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(event);
    }

    fn snapshot(&self) -> Vec<SolverEvent> {
        self.buf.iter().cloned().collect()
    }

    /// The newest `n` retained events, oldest first.
    fn tail(&self, n: usize) -> Vec<SolverEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).cloned().collect()
    }

    /// Events with sequence number `>= seq`, plus the next sequence
    /// number to poll from. Sequence numbers count every event ever
    /// pushed, so a reader that falls behind the ring simply resumes at
    /// the oldest retained event (the gap shows up in
    /// [`Obs::dropped_events`]).
    fn since(&self, seq: u64) -> (u64, Vec<SolverEvent>) {
        let next = self.evicted + self.buf.len() as u64;
        let skip = seq.saturating_sub(self.evicted).min(self.buf.len() as u64) as usize;
        (next, self.buf.iter().skip(skip).cloned().collect())
    }
}

/// Bounded span store: like [`EventRing`] but for [`SpanRecord`]s, so an
/// always-on daemon handle cannot grow without bound. Doubles as the
/// flight recorder's "recent spans" window — the newest retained spans
/// *are* the flight tail.
pub(crate) struct SpanRing {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
    evicted: u64,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        SpanRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    pub(crate) fn push(&mut self, record: SpanRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(record);
    }

    fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.iter().cloned().collect()
    }

    /// The newest `n` retained spans, oldest first.
    fn tail(&self, n: usize) -> Vec<SpanRecord> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).cloned().collect()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.buf.iter()
    }
}

/// Bounded ring of timestamped metric snapshots — the third leg of the
/// flight recorder (spans and solver events have their own rings).
pub(crate) struct FlightRing {
    buf: VecDeque<export::FlightSnapshot>,
    capacity: usize,
}

impl FlightRing {
    fn new(capacity: usize) -> Self {
        FlightRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn push(&mut self, snapshot: export::FlightSnapshot) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(snapshot);
    }

    fn snapshot(&self) -> Vec<export::FlightSnapshot> {
        self.buf.iter().cloned().collect()
    }
}

/// Poison-recovering lock acquisition for the telemetry stores. The
/// panic *hook* reads these locks, so they must be acquirable even after
/// some thread panicked mid-record — a panicking `lock()` inside the
/// hook would double-panic and abort the process. Every store here is a
/// ring or map whose items are inserted whole under the lock, so a
/// recovered guard observes at worst a missing item, never a torn one.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared storage behind an enabled [`Obs`] handle.
pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) spans: Mutex<SpanRing>,
    pub(crate) registry: Mutex<Registry>,
    pub(crate) events: Mutex<EventRing>,
    /// Human-readable names for span lanes ([`Obs::name_lane`]); unnamed
    /// lanes export as `lane-<tid>`.
    pub(crate) lanes: Mutex<BTreeMap<u64, String>>,
    pub(crate) flight: Mutex<FlightRing>,
}

/// A cheap, clonable observability handle.
///
/// The default handle is a **no-op sink**: recording costs one branch and
/// exporters return empty documents. [`Obs::enabled`] allocates shared
/// storage; clones of an enabled handle all feed the same sink, so a single
/// `Obs` can be threaded through the whole pipeline (including across the
/// hybrid solver's worker threads — all methods take `&self` and the
/// storage is mutex-protected).
#[derive(Clone, Default)]
pub struct Obs {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// An enabled handle with fresh storage; its epoch (t=0 of every
    /// exported timestamp) is the moment of this call. The solver-event
    /// stream is bounded at [`DEFAULT_EVENT_CAPACITY`]; long-running
    /// daemons can size it explicitly with
    /// [`Obs::enabled_with_event_capacity`].
    pub fn enabled() -> Obs {
        Obs::enabled_with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose solver-event ring retains at most
    /// `capacity` events (at least 1). Once full, the oldest events are
    /// evicted — [`Obs::dropped_events`] counts the loss — so an
    /// always-on handle in a daemon cannot grow without bound. Spans and
    /// metrics are aggregates and stay as-is.
    pub fn enabled_with_event_capacity(capacity: usize) -> Obs {
        Obs::enabled_with_capacities(capacity, DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled handle with explicit bounds on both rings: at most
    /// `event_capacity` solver events and `span_capacity` spans are
    /// retained (each at least 1). Eviction counts surface through
    /// [`Obs::dropped_events`] and [`Obs::dropped_spans`].
    pub fn enabled_with_capacities(event_capacity: usize, span_capacity: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(SpanRing::new(span_capacity)),
                registry: Mutex::new(Registry::default()),
                events: Mutex::new(EventRing::new(event_capacity)),
                lanes: Mutex::new(BTreeMap::new()),
                flight: Mutex::new(FlightRing::new(FLIGHT_SNAPSHOT_CAPACITY)),
            })),
        }
    }

    /// The no-op handle (same as [`Obs::default`]).
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this handle records anything. Use to skip *preparing*
    /// expensive attribute values; the recording methods already no-op.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the handle was enabled (0 when disabled).
    pub fn elapsed_us(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.epoch.elapsed().as_secs_f64() * 1e6)
    }

    /// Opens a timed span; it records itself when dropped. Prefer the
    /// [`span!`] macro when also setting attributes.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => SpanGuard::start(Arc::clone(inner), name.into()),
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            crate::lock_recover(&inner.registry).counter_add(name, delta);
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            crate::lock_recover(&inner.registry).gauge_set(name, value);
        }
    }

    /// Records one sample into the named histogram (percentiles are
    /// computed at export time).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            crate::lock_recover(&inner.registry).observe(name, value);
        }
    }

    /// Appends a timestamped solver-progress event from `source` (e.g.
    /// `"milp"`, `"hybrid"`, `"pipeline"`).
    pub fn solver_event(&self, source: &str, kind: SolverEventKind) {
        if let Some(inner) = &self.inner {
            let event = SolverEvent {
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
                source: source.to_string(),
                kind,
            };
            crate::lock_recover(&inner.events).push(event);
        }
    }

    /// Snapshot of the retained solver-progress event stream (the ring
    /// may have evicted older events; see [`Obs::dropped_events`]).
    pub fn solver_events(&self) -> Vec<SolverEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| crate::lock_recover(&i.events).snapshot())
    }

    /// Incremental read for pollers (e.g. a job-status endpoint
    /// streaming solver progress): returns the events with sequence
    /// number `>= seq` plus the next sequence number to poll from.
    /// Sequence numbers count every event ever recorded on this handle,
    /// so `solver_events_since(0)` on a fresh handle returns everything,
    /// and a reader that falls behind the ring resumes at the oldest
    /// retained event. Disabled handles return `(0, [])`.
    pub fn solver_events_since(&self, seq: u64) -> (u64, Vec<SolverEvent>) {
        self.inner.as_ref().map_or_else(
            || (0, Vec::new()),
            |i| crate::lock_recover(&i.events).since(seq),
        )
    }

    /// How many solver events the bounded ring has evicted so far (0 when
    /// disabled). Non-zero means [`Obs::solver_events`] is a suffix of
    /// the true stream.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| crate::lock_recover(&i.events).evicted)
    }

    /// Snapshot of the retained spans (the bounded ring may have evicted
    /// older ones; see [`Obs::dropped_spans`]).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| crate::lock_recover(&i.spans).snapshot())
    }

    /// How many spans the bounded ring has evicted so far (0 when
    /// disabled). Non-zero means [`Obs::spans`] is a suffix of the true
    /// stream.
    pub fn dropped_spans(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| crate::lock_recover(&i.spans).evicted)
    }

    /// Names the *calling thread's* span lane; exported traces label the
    /// lane with `name` instead of the default `lane-<tid>`. Worker pools
    /// call this once at thread start (e.g. `shard-worker-3`,
    /// `milp-worker-0`) so a multi-threaded run merges into one coherent
    /// chrome-trace with recognizable rows. Calling again renames;
    /// disabled handles ignore the call. Guard the `format!` with
    /// [`Obs::is_enabled`] on hot paths.
    pub fn name_lane(&self, name: impl Into<String>) {
        if let Some(inner) = &self.inner {
            inner
                .lanes
                .lock()
                .unwrap()
                .insert(current_lane(), name.into());
        }
    }

    /// The lane-name table built by [`Obs::name_lane`] (empty when
    /// disabled).
    pub fn lane_names(&self) -> BTreeMap<u64, String> {
        self.inner
            .as_ref()
            .map_or_else(BTreeMap::new, |i| crate::lock_recover(&i.lanes).clone())
    }

    /// Pushes a timestamped copy of the current metric state into the
    /// flight recorder's bounded snapshot ring (capacity
    /// [`FLIGHT_SNAPSHOT_CAPACITY`], oldest evicted first). The
    /// `pesto-serve` daemon calls this on every `/metrics` scrape, so a
    /// postmortem dump carries the recent metric history, not just the
    /// final state. No-op when disabled.
    pub fn record_flight_snapshot(&self) {
        if let Some(inner) = &self.inner {
            let snapshot = export::FlightSnapshot {
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
                metrics: self.metrics_snapshot(),
            };
            crate::lock_recover(&inner.flight).push(snapshot);
        }
    }

    /// The retained flight-recorder metric snapshots, oldest first
    /// (empty when disabled).
    pub fn flight_snapshots(&self) -> Vec<export::FlightSnapshot> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| crate::lock_recover(&i.flight).snapshot())
    }

    /// The newest `n` retained spans, oldest first.
    pub(crate) fn span_tail(&self, n: usize) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| crate::lock_recover(&i.spans).tail(n))
    }

    /// The newest `n` retained solver events, oldest first.
    pub(crate) fn event_tail(&self, n: usize) -> Vec<SolverEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| crate::lock_recover(&i.events).tail(n))
    }

    /// Installs a process-wide panic hook that writes this handle's
    /// flight-recorder dump ([`Obs::flight_dump`]) to `path` after the
    /// previous hook (which keeps the default backtrace output) runs.
    /// Gives postmortem telemetry for crashed jobs at zero steady-state
    /// cost — the dump is only rendered inside the panic path. Disabled
    /// handles install nothing. Installing from several handles (or one
    /// handle with several paths) chains hooks; each writes its own dump.
    ///
    /// Idempotent: re-installing the *same* handle with the *same* path
    /// is a no-op returning `false`, so restart loops (a supervisor
    /// re-running daemon startup) cannot grow an unbounded hook chain.
    /// Returns `true` when a hook was actually installed.
    ///
    /// The hook itself cannot panic: the telemetry locks recover from
    /// poison (the panicking thread may have died mid-record) and the
    /// dump write is best-effort — a missing directory or unwritable
    /// path loses the dump, never the process (a panic inside a panic
    /// hook aborts).
    pub fn install_panic_hook(&self, path: impl Into<PathBuf>) -> bool {
        static PANIC_SINKS: Mutex<Vec<(std::sync::Weak<Inner>, PathBuf)>> = Mutex::new(Vec::new());
        let Some(inner) = &self.inner else {
            return false;
        };
        let path: PathBuf = path.into();
        {
            let mut sinks = lock_recover(&PANIC_SINKS);
            // Drop entries whose handles are gone, then refuse duplicates.
            sinks.retain(|(weak, _)| weak.strong_count() > 0);
            let duplicate = sinks.iter().any(|(weak, p)| {
                *p == path
                    && weak
                        .upgrade()
                        .is_some_and(|other| Arc::ptr_eq(&other, inner))
            });
            if duplicate {
                return false;
            }
            sinks.push((Arc::downgrade(inner), path.clone()));
        }
        let obs = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            obs.record_flight_snapshot();
            let _ = std::fs::write(&path, obs.flight_dump());
        }));
        true
    }

    /// Current value of a counter (0 when absent or disabled). Mostly for
    /// tests and the text summary.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| crate::lock_recover(&i.registry).counter(name))
    }

    /// Latest value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|i| crate::lock_recover(&i.registry).gauge(name))
    }
}

/// Opens a span on an [`Obs`] handle, optionally setting attributes:
///
/// ```
/// use pesto_obs::{span, Obs};
/// let obs = Obs::enabled();
/// let _guard = span!(obs, "coarsen", ops_before = 100, ops_after = 10);
/// ```
///
/// Attribute values are only formatted when the handle is enabled.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $obs.span($name);
        $(guard.set_attr(stringify!($key), $value);)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        {
            let mut s = obs.span("x");
            s.set_attr("k", 1);
        }
        obs.counter_add("c", 5);
        obs.gauge_set("g", 1.0);
        obs.observe("h", 2.0);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        obs.name_lane("ghost");
        obs.record_flight_snapshot();
        assert!(!obs.is_enabled());
        assert!(obs.spans().is_empty());
        assert!(obs.solver_events().is_empty());
        assert_eq!(obs.counter("c"), 0);
        assert_eq!(obs.gauge("g"), None);
        assert_eq!(obs.elapsed_us(), 0.0);
        assert_eq!(obs.dropped_spans(), 0);
        assert!(obs.lane_names().is_empty());
        assert!(obs.flight_snapshots().is_empty());
        assert_eq!(obs.flight_dump(), "{\"enabled\":false}\n");
        assert_eq!(obs.prometheus_text(), "");
    }

    #[test]
    fn span_ring_evicts_oldest_and_counts_drops() {
        let obs = Obs::enabled_with_capacities(DEFAULT_EVENT_CAPACITY, 3);
        for i in 0..5 {
            drop(obs.span(format!("s{i}")));
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 3, "ring retains only the newest 3");
        assert_eq!(obs.dropped_spans(), 2);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
    }

    #[test]
    fn named_lanes_label_the_chrome_trace() {
        let obs = Obs::enabled();
        obs.name_lane("unit-test-lane");
        drop(obs.span("work"));
        let lane = current_lane();
        assert_eq!(
            obs.lane_names().get(&lane).map(String::as_str),
            Some("unit-test-lane")
        );
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("unit-test-lane"));
    }

    #[test]
    fn unnamed_lanes_fall_back_to_lane_tid() {
        let obs = Obs::enabled();
        drop(obs.span("work"));
        let trace = obs.chrome_trace();
        assert!(trace.contains(&format!("lane-{}", current_lane())));
    }

    #[test]
    fn flight_dump_carries_rings_snapshots_and_drop_counts() {
        let obs = Obs::enabled_with_capacities(2, 2);
        obs.name_lane("flight-lane");
        obs.counter_add("c", 4);
        obs.observe("h", 2.0);
        for i in 0..3 {
            drop(obs.span(format!("s{i}")));
            obs.solver_event(
                "s",
                SolverEventKind::Incumbent {
                    objective: i as f64,
                },
            );
        }
        obs.record_flight_snapshot();
        obs.counter_add("c", 1);
        obs.record_flight_snapshot();
        assert_eq!(obs.flight_snapshots().len(), 2);
        let dump = obs.flight_dump();
        assert!(dump.contains("\"enabled\":true"));
        assert!(dump.contains("\"dropped_spans\":1"));
        assert!(dump.contains("\"dropped_events\":1"));
        assert!(dump.contains("flight-lane"));
        assert!(dump.contains("\"s1\"") && dump.contains("\"s2\""));
        assert!(!dump.contains("\"s0\""), "evicted span is gone");
        assert!(dump.contains("\"metric_snapshots\":["));
        assert!(dump.contains("\"c\":5"), "current metrics are included");
        assert!(dump.contains("\"p95\""), "histogram summaries are included");
    }

    #[test]
    fn panic_hook_writes_the_flight_dump() {
        let obs = Obs::enabled();
        obs.counter_add("pre.panic", 1);
        let path = std::env::temp_dir().join(format!("pesto-obs-hook-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        obs.install_panic_hook(&path);
        let result = std::thread::Builder::new()
            .name("obs-panic-probe".into())
            .spawn(|| panic!("flight recorder probe"))
            .unwrap()
            .join();
        // Restore the default hook before asserting, so a failure below
        // doesn't re-enter ours.
        let _ = std::panic::take_hook();
        assert!(result.is_err());
        let dump = std::fs::read_to_string(&path).expect("hook wrote the dump");
        assert!(dump.contains("\"enabled\":true"));
        assert!(dump.contains("pre.panic"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panic_hook_install_is_idempotent_per_handle_and_path() {
        let obs = Obs::enabled();
        let path =
            std::env::temp_dir().join(format!("pesto-obs-hook-idem-{}.json", std::process::id()));
        assert!(obs.install_panic_hook(&path), "first install takes effect");
        assert!(
            !obs.install_panic_hook(&path),
            "same handle + same path is a no-op"
        );
        assert!(
            !obs.install_panic_hook(&path),
            "still a no-op on the third try"
        );
        // A different path for the same handle is a genuinely new sink...
        let other =
            std::env::temp_dir().join(format!("pesto-obs-hook-idem-b-{}.json", std::process::id()));
        assert!(obs.install_panic_hook(&other));
        assert!(!obs.install_panic_hook(&other));
        // ...as is a different handle for the same path.
        let second = Obs::enabled();
        assert!(second.install_panic_hook(&path));
        assert!(!second.install_panic_hook(&path));
        // Disabled handles never install anything.
        assert!(!Obs::disabled().install_panic_hook(&path));
        // Restore the default hook so other tests see a clean slate.
        let _ = std::panic::take_hook();
    }

    #[test]
    fn panic_hook_survives_an_unwritable_dump_path() {
        let obs = Obs::enabled();
        obs.counter_add("doomed", 1);
        // A dump path in a directory that does not exist: the write must
        // fail, and the hook must swallow that failure. A panic inside a
        // panic hook aborts the process, so this test finishing at all is
        // the assertion that the hook cannot panic.
        let path = std::env::temp_dir()
            .join(format!("pesto-obs-no-such-dir-{}", std::process::id()))
            .join("deep")
            .join("flight.json");
        obs.install_panic_hook(&path);
        let result = std::thread::Builder::new()
            .name("obs-unwritable-probe".into())
            .spawn(|| panic!("probe with unwritable dump path"))
            .unwrap()
            .join();
        let _ = std::panic::take_hook();
        assert!(result.is_err(), "the probe thread panicked normally");
        assert!(!path.exists(), "nothing was written");
        // The handle is still fully usable afterwards.
        obs.counter_add("doomed", 1);
        assert_eq!(obs.counter("doomed"), 2);
    }

    #[test]
    fn clones_share_one_sink() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter_add("shared", 2);
        obs.counter_add("shared", 3);
        assert_eq!(obs.counter("shared"), 5);
        drop(clone.span("from-clone"));
        assert_eq!(obs.spans().len(), 1);
    }

    #[test]
    fn span_records_duration_and_attrs() {
        let obs = Obs::enabled();
        {
            let mut s = span!(obs, "work", items = 3);
            s.set_attr("phase", "late");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].dur_us >= 0.0);
        assert!(spans[0].start_us >= 0.0);
        assert_eq!(
            spans[0].attrs,
            vec![
                ("items".to_string(), "3".to_string()),
                ("phase".to_string(), "late".to_string()),
            ]
        );
    }

    #[test]
    fn events_are_timestamped_and_ordered() {
        let obs = Obs::enabled();
        obs.solver_event("milp", SolverEventKind::Incumbent { objective: 12.0 });
        obs.solver_event(
            "milp",
            SolverEventKind::Gap {
                incumbent: 12.0,
                best_bound: 11.0,
                relative_gap: 1.0 / 12.0,
                nodes_explored: 9,
            },
        );
        let events = obs.solver_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].t_us <= events[1].t_us);
        assert_eq!(events[0].source, "milp");
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts_drops() {
        let obs = Obs::enabled_with_event_capacity(3);
        for i in 0..5 {
            obs.solver_event(
                "hybrid",
                SolverEventKind::Incumbent {
                    objective: i as f64,
                },
            );
        }
        let events = obs.solver_events();
        assert_eq!(events.len(), 3, "ring retains only the newest 3");
        assert_eq!(obs.dropped_events(), 2);
        // The retained suffix is the newest events, in order.
        let objectives: Vec<f64> = events
            .iter()
            .map(|e| match e.kind {
                SolverEventKind::Incumbent { objective } => objective,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(objectives, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn incremental_reads_resume_where_they_left_off() {
        let obs = Obs::enabled_with_event_capacity(4);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 0.0 });
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        let (next, batch) = obs.solver_events_since(0);
        assert_eq!(next, 2);
        assert_eq!(batch.len(), 2);
        // No new events: empty batch, same cursor.
        let (next2, batch2) = obs.solver_events_since(next);
        assert_eq!(next2, 2);
        assert!(batch2.is_empty());
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 2.0 });
        let (next3, batch3) = obs.solver_events_since(next2);
        assert_eq!(next3, 3);
        assert_eq!(batch3.len(), 1);
    }

    #[test]
    fn a_lagging_reader_resumes_at_the_oldest_retained_event() {
        let obs = Obs::enabled_with_event_capacity(2);
        for i in 0..6 {
            obs.solver_event(
                "s",
                SolverEventKind::Incumbent {
                    objective: i as f64,
                },
            );
        }
        // Reader last saw seq 1, but events 0..=3 were evicted.
        let (next, batch) = obs.solver_events_since(1);
        assert_eq!(next, 6);
        assert_eq!(batch.len(), 2, "only the retained suffix is available");
        assert_eq!(obs.dropped_events(), 4);
        // A cursor ahead of the stream returns nothing (and stays put).
        let (next_ahead, empty) = obs.solver_events_since(100);
        assert_eq!(next_ahead, 6);
        assert!(empty.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let obs = Obs::enabled_with_event_capacity(0);
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 1.0 });
        obs.solver_event("s", SolverEventKind::Incumbent { objective: 2.0 });
        assert_eq!(obs.solver_events().len(), 1);
        assert_eq!(obs.dropped_events(), 1);
    }

    #[test]
    fn disabled_handle_event_ring_costs_nothing() {
        let obs = Obs::disabled();
        assert_eq!(obs.solver_events_since(0), (0, Vec::new()));
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn gauges_keep_latest_value() {
        let obs = Obs::enabled();
        obs.gauge_set("temp", 10.0);
        obs.gauge_set("temp", 4.0);
        assert_eq!(obs.gauge("temp"), Some(4.0));
    }
}
