//! The coarse↔fine mapping and plan expansion.

use pesto_graph::{Cluster, FrozenGraph, OpId, Placement, Plan, ScheduleOrder};
use serde::{Deserialize, Serialize};

/// A coarsened graph together with the mapping back to the original
/// operations.
///
/// `members(c)` lists, in original topological order, the fine ops merged
/// into coarse vertex `c`; `coarse_of(f)` is the inverse. Both directions
/// are total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Coarsening {
    coarse: FrozenGraph,
    members: Vec<Vec<OpId>>,
    fine_to_coarse: Vec<u32>,
}

impl Coarsening {
    pub(crate) fn from_parts(
        coarse: FrozenGraph,
        members: Vec<Vec<OpId>>,
        fine_to_coarse: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(coarse.op_count(), members.len());
        Coarsening {
            coarse,
            members,
            fine_to_coarse,
        }
    }

    /// The identity coarsening: every op is its own coarse vertex.
    pub fn identity(graph: &FrozenGraph) -> Self {
        Coarsening {
            coarse: graph.clone(),
            members: graph.op_ids().map(|id| vec![id]).collect(),
            fine_to_coarse: (0..graph.op_count() as u32).collect(),
        }
    }

    /// The coarsened graph (input to the ILP).
    pub fn coarse(&self) -> &FrozenGraph {
        &self.coarse
    }

    /// Fine ops merged into coarse vertex `c`, in original topological
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the coarse graph.
    pub fn members(&self, c: OpId) -> &[OpId] {
        &self.members[c.index()]
    }

    /// Coarse vertex containing fine op `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range for the fine graph.
    pub fn coarse_of(&self, f: OpId) -> OpId {
        OpId::from_index(self.fine_to_coarse[f.index()] as usize)
    }

    /// Number of fine operations covered.
    pub fn fine_op_count(&self) -> usize {
        self.fine_to_coarse.len()
    }

    /// Size of the largest merged vertex.
    pub fn max_member_count(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Expands a placement of the coarse graph to the fine graph: every
    /// member inherits its coarse vertex's device.
    pub fn expand_placement(&self, coarse_placement: &Placement) -> Placement {
        let mut device_of = Vec::with_capacity(self.fine_op_count());
        for f in 0..self.fine_op_count() {
            let c = self.fine_to_coarse[f] as usize;
            device_of.push(coarse_placement.device(OpId::from_index(c)));
        }
        Placement::from_vec(device_of)
    }

    /// Expands a full coarse plan to the fine graph. The coarse per-device
    /// order expands by replacing each merged vertex with its members in
    /// original topological order — the paper's "individual vertices of a
    /// merged-vertex are scheduled sequentially on the same device" rule.
    /// A placement-only coarse plan expands to a placement-only fine plan
    /// (the paper's fallback to default TensorFlow scheduling).
    pub fn expand_plan(&self, coarse_plan: &Plan, cluster: &Cluster) -> Plan {
        let placement = self.expand_placement(&coarse_plan.placement);
        match &coarse_plan.order {
            None => Plan::placement_only(placement),
            Some(order) => {
                let mut per_device = Vec::with_capacity(cluster.device_count());
                for d in 0..cluster.device_count() {
                    let mut fine_order = Vec::new();
                    for &c in order.on_device(pesto_graph::DeviceId::from_index(d)) {
                        fine_order.extend_from_slice(self.members(c));
                    }
                    per_device.push(fine_order);
                }
                Plan::with_order(placement, ScheduleOrder::from_vecs(per_device))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::{Cluster, DeviceKind, OpGraph};

    fn tiny() -> FrozenGraph {
        let mut g = OpGraph::new("tiny");
        let a = g.add_op("a", DeviceKind::Gpu, 1.0, 8);
        let b = g.add_op("b", DeviceKind::Gpu, 1.0, 8);
        let c = g.add_op("c", DeviceKind::Gpu, 1.0, 8);
        g.add_edge(a, b, 10).unwrap();
        g.add_edge(b, c, 10).unwrap();
        g.freeze().unwrap()
    }

    #[test]
    fn identity_mapping_round_trips() {
        let g = tiny();
        let c = Coarsening::identity(&g);
        assert_eq!(c.coarse().op_count(), 3);
        assert_eq!(c.fine_op_count(), 3);
        assert_eq!(c.max_member_count(), 1);
        for id in g.op_ids() {
            assert_eq!(c.coarse_of(id), id);
            assert_eq!(c.members(id), &[id]);
        }
    }

    #[test]
    fn identity_placement_expansion_is_identity() {
        let g = tiny();
        let cluster = Cluster::two_gpus();
        let c = Coarsening::identity(&g);
        let p = Placement::affinity_default(&g, &cluster);
        assert_eq!(c.expand_placement(&p), p);
    }

    #[test]
    fn identity_plan_expansion_preserves_order() {
        let g = tiny();
        let cluster = Cluster::two_gpus();
        let c = Coarsening::identity(&g);
        let p = Placement::affinity_default(&g, &cluster);
        let order = ScheduleOrder::from_global_order(&p, g.topo_order(), cluster.device_count());
        let plan = Plan::with_order(p, order);
        let expanded = c.expand_plan(&plan, &cluster);
        assert_eq!(expanded, plan);
        // Placement-only plans stay placement-only.
        let po = Plan::placement_only(plan.placement.clone());
        assert_eq!(c.expand_plan(&po, &cluster).order, None);
    }
}
