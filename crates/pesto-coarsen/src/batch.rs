//! Batch merge selection (Theorem 3.5) and the coarsening driver.

use crate::mapping::Coarsening;
use pesto_graph::{DeviceKind, FrozenGraph, GraphError, OpGraph, OpId};
use std::collections::HashMap;

/// Coarsening limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarsenConfig {
    /// Stop once the coarse graph has at most this many vertices. The paper
    /// finds ~200 to be the sweet spot for its models (§3.3, §5.3).
    pub target_vertices: usize,
    /// Safety cap on merge rounds; each round removes 30–70% of edges in
    /// practice, so a few dozen rounds always suffice.
    pub max_rounds: usize,
    /// When parallel fine edges between two groups collapse into one coarse
    /// edge, each collapsed edge beyond the first adds this many bytes to
    /// the coarse edge. Setting it to the communication model's `β0/β1`
    /// ratio makes coarse transfer estimates account for the per-transfer
    /// fixed latency the fine graph actually pays. `0` disables it.
    pub parallel_edge_penalty_bytes: u64,
}

impl CoarsenConfig {
    /// The paper's configuration for a given target size.
    pub fn to_target(target_vertices: usize) -> Self {
        CoarsenConfig {
            target_vertices: target_vertices.max(1),
            max_rounds: 256,
            parallel_edge_penalty_bytes: 0,
        }
    }

    /// The paper's default target of ~200 vertices.
    pub fn paper_default() -> Self {
        CoarsenConfig::to_target(200)
    }
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig::paper_default()
    }
}

/// Whether two op classes may be merged: merged vertices are placed as a
/// unit, so both endpoints must share a placement domain (GPU-placeable
/// vs CPU-resident).
fn kinds_mergeable(a: DeviceKind, b: DeviceKind) -> bool {
    let gpu = |k| matches!(k, DeviceKind::Gpu);
    gpu(a) == gpu(b)
}

fn merged_kind(a: DeviceKind, b: DeviceKind) -> DeviceKind {
    if matches!(a, DeviceKind::Gpu) || matches!(b, DeviceKind::Gpu) {
        DeviceKind::Gpu
    } else {
        DeviceKind::Cpu
    }
}

/// Merges the single edge `(u, v)` under Theorem 3.2's condition.
///
/// # Errors
///
/// Returns [`GraphError::DuplicateEdge`]`(u, v)` (reused as "edge not
/// mergeable") if `(u, v)` is not an edge that forms the unique path from
/// `u` to `v`, or if the endpoint device classes cannot be colocated.
pub fn merge_edge(graph: &FrozenGraph, u: OpId, v: OpId) -> Result<FrozenGraph, GraphError> {
    if !graph.edge_is_unique_path(u, v) || !kinds_mergeable(graph.op(u).kind(), graph.op(v).kind())
    {
        return Err(GraphError::DuplicateEdge(u, v));
    }
    let merged = try_apply(graph, &[(u, v)], 0)?;
    Ok(merged.0)
}

/// Selects a Theorem 3.5-safe matching of at most `limit` edges,
/// prioritizing edges by communication size (descending). Only edges whose
/// height delta `H(v) - H(u)` is at most `max_d` are considered: merging a
/// long-range edge (e.g. a forward op with its distant gradient op) makes
/// every consumer of `u` transitively wait for `v`'s whole dependency cone,
/// collapsing the coarse graph toward a chain and destroying the
/// parallelizability the paper's §3.3 sets out to maintain.
fn select_batch(g: &FrozenGraph, limit: usize, max_d: i64, compute_cap: f64) -> Vec<(OpId, OpId)> {
    if limit == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..g.edge_count()).collect();
    let edges = g.edges();
    // Two priority tiers: "local" merges first — edges whose source has a
    // single consumer or whose destination has a single producer lose no
    // parallelism when contracted — then everything else; by communication
    // size (descending) within each tier.
    let tier = |e: usize| -> u8 {
        let (u, v, _) = edges[e];
        u8::from(!(g.out_degree(u) == 1 || g.in_degree(v) == 1))
    };
    order.sort_by(|&a, &b| {
        tier(a)
            .cmp(&tier(b))
            .then(edges[b].2.cmp(&edges[a].2))
            .then(a.cmp(&b))
    });

    let n = g.op_count();
    let mut matched = vec![false; n];
    // For condition (iii): selected destinations v_j with their d_j, and
    // selected sources u_i.
    let mut sel_dst: HashMap<usize, i64> = HashMap::new();
    let mut sel_src: Vec<bool> = vec![false; n];
    let mut picked = Vec::new();

    'cand: for &e in &order {
        let (u, v, _) = edges[e];
        if matched[u.index()] || matched[v.index()] {
            continue; // condition (i): vertex-disjoint matching
        }
        if !kinds_mergeable(g.op(u).kind(), g.op(v).kind()) {
            continue;
        }
        let hu = i64::from(g.height(u));
        let hv = i64::from(g.height(v));
        let d = hv - hu;
        if d > max_d {
            continue; // parallelizability guard (see doc comment)
        }
        if g.op(u).compute_us() + g.op(v).compute_us() > compute_cap {
            continue; // weight balance: no giant merged vertices
        }

        // Condition (ii): one of the four local safety conditions.
        let cond_ii = g.out_degree(u) == 1
            || g.in_degree(v) == 1
            || hv == hu + 1
            || g.succs(u)
                .iter()
                .all(|&w| w == v || i64::from(g.height(w)) > hu + d);
        if !cond_ii {
            continue;
        }

        // Condition (iii), as the candidate's u against selected v_j:
        // violation if (u, v_j) ∈ E and H(u) == H(v_j) + d_j.
        for &w in g.succs(u) {
            if let Some(&dj) = sel_dst.get(&w.index()) {
                if hu == i64::from(g.height(w)) + dj {
                    continue 'cand;
                }
            }
        }
        // ... and as the candidate's v against selected u_i:
        // violation if (u_i, v) ∈ E and H(u_i) == H(v) + d.
        for &p in g.preds(v) {
            if sel_src[p.index()] && i64::from(g.height(p)) == hv + d {
                continue 'cand;
            }
        }

        matched[u.index()] = true;
        matched[v.index()] = true;
        sel_src[u.index()] = true;
        sel_dst.insert(v.index(), d);
        picked.push((u, v));
        if picked.len() >= limit {
            break;
        }
    }
    picked
}

/// Applies the largest safe prefix-or-suffix subset of a matching: tries
/// the whole batch, and on a (rare) cycle halves the batch recursively.
/// Every individually-selected pair is Theorem-3.2 safe, so a singleton
/// never fails; the halving therefore always makes progress.
fn apply_safe(
    g: &FrozenGraph,
    matching: &[(OpId, OpId)],
    penalty: u64,
) -> Option<(FrozenGraph, Vec<Vec<OpId>>)> {
    if matching.is_empty() {
        return None;
    }
    match try_apply(g, matching, penalty) {
        Ok(res) => Some(res),
        Err(_) if matching.len() == 1 => None,
        Err(_) => {
            let mid = matching.len() / 2;
            apply_safe(g, &matching[..mid], penalty)
                .or_else(|| apply_safe(g, &matching[mid..], penalty))
        }
    }
}

/// Applies a vertex-disjoint matching, returning the merged graph and, for
/// each new vertex, the list of old vertices it contains (singletons or
/// pairs), ordered old-topologically within each group.
///
/// # Errors
///
/// Returns [`GraphError::Cycle`] if the batch would create a cycle. The
/// Theorem 3.5 filter in [`select_batch`] makes this rare, but the merged
/// graph is always revalidated rather than trusted.
fn try_apply(
    g: &FrozenGraph,
    matching: &[(OpId, OpId)],
    penalty: u64,
) -> Result<(FrozenGraph, Vec<Vec<OpId>>), GraphError> {
    let n = g.op_count();
    // Map every old vertex to its group representative.
    let mut group_of = vec![usize::MAX; n];
    let mut groups: Vec<Vec<OpId>> = Vec::new();
    for &(u, v) in matching {
        let gidx = groups.len();
        groups.push(vec![u, v]); // u precedes v in any topological order
        group_of[u.index()] = gidx;
        group_of[v.index()] = gidx;
    }
    #[allow(clippy::needless_range_loop)] // `i` is also the new OpId index
    for i in 0..n {
        if group_of[i] == usize::MAX {
            group_of[i] = groups.len();
            groups.push(vec![OpId::from_index(i)]);
        }
    }

    let mut builder = OpGraph::new(g.name());
    for members in &groups {
        let (name, kind) = if members.len() == 1 {
            let op = g.op(members[0]);
            (op.name().to_string(), op.kind())
        } else {
            let a = g.op(members[0]);
            let b = g.op(members[1]);
            (
                format!("{}+{}", a.name(), b.name()),
                merged_kind(a.kind(), b.kind()),
            )
        };
        let compute: f64 = members.iter().map(|&m| g.op(m).compute_us()).sum();
        let memory: u64 = members.iter().map(|&m| g.op(m).memory_bytes()).sum();
        let id = builder.add_op(name, kind, compute, memory);
        let group = members.iter().find_map(|&m| g.op(m).colocation_group());
        builder.op_mut(id).set_colocation_group(group);
    }

    // Aggregate inter-group edges (summing parallel tensor sizes, plus the
    // configured latency-equivalent penalty per collapsed edge).
    let mut agg: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
    for &(u, v, bytes) in g.edges() {
        let (gu, gv) = (group_of[u.index()], group_of[v.index()]);
        if gu != gv {
            let e = agg.entry((gu, gv)).or_insert((0, 0));
            e.0 += bytes;
            e.1 += 1;
        }
    }
    let mut agg: Vec<((usize, usize), (u64, u64))> = agg.into_iter().collect();
    agg.sort_unstable(); // determinism
    for ((gu, gv), (sum, count)) in agg {
        let bytes = sum + penalty * count.saturating_sub(1);
        builder
            .add_edge(OpId::from_index(gu), OpId::from_index(gv), bytes)
            .expect("aggregated edges are unique and well-formed");
    }
    let merged = builder.freeze()?;
    Ok((merged, groups))
}

/// Per-round record of a coarsening run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarsenRound {
    /// Vertices before the round's merge.
    pub vertices_before: usize,
    /// Vertices after.
    pub vertices_after: usize,
    /// Edges before.
    pub edges_before: usize,
    /// Edges after.
    pub edges_after: usize,
    /// Height-delta bound in force during the round.
    pub max_d: i64,
}

impl CoarsenRound {
    /// Fraction of edges removed by this round; the paper observes 30–70%
    /// per round in practice (§3.3).
    pub fn edge_removal_frac(&self) -> f64 {
        if self.edges_before == 0 {
            0.0
        } else {
            1.0 - self.edges_after as f64 / self.edges_before as f64
        }
    }
}

/// Like [`coarsen`], additionally returning the per-round statistics.
pub fn coarsen_with_stats(
    graph: &FrozenGraph,
    config: &CoarsenConfig,
) -> (Coarsening, Vec<CoarsenRound>) {
    coarsen_impl(graph, config)
}

/// Coarsens `graph` until it has at most `config.target_vertices` vertices
/// or no safe merges remain, returning the final [`Coarsening`].
///
/// Each round selects a Theorem 3.5 matching prioritized by communication
/// size and merges it wholesale; the member mapping back to `graph` is
/// composed across rounds.
pub fn coarsen(graph: &FrozenGraph, config: &CoarsenConfig) -> Coarsening {
    coarsen_impl(graph, config).0
}

fn coarsen_impl(graph: &FrozenGraph, config: &CoarsenConfig) -> (Coarsening, Vec<CoarsenRound>) {
    // Topological position of each fine op, for ordering group members.
    let mut fine_pos = vec![0usize; graph.op_count()];
    for (i, &v) in graph.topo_order().iter().enumerate() {
        fine_pos[v.index()] = i;
    }

    let mut current = Coarsening::identity(graph);
    // Start with structure-preserving unit-height merges; double the
    // allowed height delta only when no such merges remain. Merged-vertex
    // compute is capped at a small multiple of the average target vertex
    // weight so no single coarse vertex can serialize a large share of the
    // step (weight balance, as in multilevel graph partitioning).
    let mut max_d: i64 = 1;
    let height_bound = i64::from(graph.heights().iter().copied().max().unwrap_or(1));
    let compute_cap =
        (4.0 * graph.total_compute_us() / config.target_vertices.max(1) as f64).max(1.0);
    let mut rounds: Vec<CoarsenRound> = Vec::new();
    for _ in 0..config.max_rounds {
        let coarse = current.coarse();
        if coarse.op_count() <= config.target_vertices {
            break;
        }
        let (vertices_before, edges_before) = (coarse.op_count(), coarse.edge_count());
        let limit = coarse.op_count() - config.target_vertices;
        let matching = select_batch(coarse, limit, max_d, compute_cap);
        if matching.is_empty() {
            if max_d > height_bound {
                break;
            }
            max_d *= 2;
            continue;
        }
        let Some((merged, groups)) =
            apply_safe(coarse, &matching, config.parallel_edge_penalty_bytes)
        else {
            break;
        };
        rounds.push(CoarsenRound {
            vertices_before,
            vertices_after: merged.op_count(),
            edges_before,
            edges_after: merged.edge_count(),
            max_d,
        });

        // Compose the mapping: new coarse -> fine members.
        let mut members: Vec<Vec<OpId>> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut fine: Vec<OpId> = group
                .iter()
                .flat_map(|&c| current.members(c).iter().copied())
                .collect();
            fine.sort_by_key(|f| fine_pos[f.index()]);
            members.push(fine);
        }
        let mut fine_to_coarse = vec![0u32; graph.op_count()];
        for (c, fine) in members.iter().enumerate() {
            for &f in fine {
                fine_to_coarse[f.index()] = c as u32;
            }
        }
        current = Coarsening::from_parts(merged, members, fine_to_coarse);
    }
    (current, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesto_graph::OpGraph;

    fn chain(n: usize) -> FrozenGraph {
        let mut g = OpGraph::new("chain");
        let ids: Vec<_> = (0..n)
            .map(|i| g.add_op(format!("op{i}"), DeviceKind::Gpu, 1.0, 8))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 100).unwrap();
        }
        g.freeze().unwrap()
    }

    #[test]
    fn stats_record_rounds_and_edge_removal() {
        let g = chain(128);
        let (c, rounds) = coarsen_with_stats(&g, &CoarsenConfig::to_target(8));
        assert!(c.coarse().op_count() <= 8);
        assert!(!rounds.is_empty());
        for r in &rounds {
            assert!(r.vertices_after < r.vertices_before);
            assert!(r.edges_after <= r.edges_before);
            assert!(r.edge_removal_frac() >= 0.0 && r.edge_removal_frac() <= 1.0);
        }
        // On a pure chain, unit-height merges halve the graph per round:
        // comfortably inside the paper's 30-70% per-round observation.
        assert!(rounds[0].edge_removal_frac() >= 0.3);
    }

    #[test]
    fn chain_coarsens_to_target() {
        let g = chain(64);
        let c = coarsen(&g, &CoarsenConfig::to_target(8));
        assert!(c.coarse().op_count() <= 8);
        assert_eq!(c.fine_op_count(), 64);
        // Total compute is preserved.
        assert!((c.coarse().total_compute_us() - 64.0).abs() < 1e-9);
        assert_eq!(c.coarse().total_memory_bytes(), 64 * 8);
    }

    #[test]
    fn all_fine_ops_covered_exactly_once() {
        let g = chain(30);
        let c = coarsen(&g, &CoarsenConfig::to_target(5));
        let mut seen = [false; 30];
        for cv in c.coarse().op_ids() {
            for &f in c.members(cv) {
                assert!(!seen[f.index()], "{f} appears twice");
                seen[f.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn figure6_simultaneous_merge_hazard_avoided() {
        // The paper's Figure 6: edges (A,C) and (B,D) each satisfy Theorem
        // 3.2, but merging both at once creates a cycle. Our batch rules
        // must never pick both.
        let mut g = OpGraph::new("fig6");
        let a = g.add_op("A", DeviceKind::Gpu, 1.0, 0);
        let b = g.add_op("B", DeviceKind::Gpu, 1.0, 0);
        let c = g.add_op("C", DeviceKind::Gpu, 1.0, 0);
        let d = g.add_op("D", DeviceKind::Gpu, 1.0, 0);
        // A->C, B->D plus cross edges B->C? Construct the classic hazard:
        // A->C, B->D, with D->A making {A,C} and {B,D} merges conflict.
        // Layout: A(h1)->C(h3), B(h1)->D(h2), D->C.
        g.add_edge(a, c, 10).unwrap();
        g.add_edge(b, d, 10).unwrap();
        g.add_edge(d, c, 10).unwrap();
        // Also C feeds back to nothing; add A->D so merging (A,C) and (B,D)
        // simultaneously creates merged(A,C) -> merged(B,D) -> merged(A,C).
        g.add_edge(a, d, 10).unwrap();
        let g = g.freeze().unwrap();
        // Whatever the algorithm picks, applying it must stay acyclic —
        // apply_matching panics on a cycle, so reaching here is the test.
        let coarsened = coarsen(&g, &CoarsenConfig::to_target(1));
        assert!(coarsened.coarse().op_count() >= 1);
    }

    #[test]
    fn single_merge_requires_unique_path() {
        let mut g = OpGraph::new("dual-path");
        let a = g.add_op("a", DeviceKind::Gpu, 1.0, 0);
        let b = g.add_op("b", DeviceKind::Gpu, 1.0, 0);
        let c = g.add_op("c", DeviceKind::Gpu, 1.0, 0);
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, c, 1).unwrap();
        g.add_edge(a, c, 1).unwrap();
        let g = g.freeze().unwrap();
        // a->c has a second path through b: merging must be refused.
        assert!(merge_edge(&g, a, c).is_err());
        // a->b is safe.
        let merged = merge_edge(&g, a, b).unwrap();
        assert_eq!(merged.op_count(), 2);
        assert_eq!(merged.edge_count(), 1);
        // Parallel edges (a->c and b->c) collapse into one with summed bytes.
        assert_eq!(merged.edges()[0].2, 2);
    }

    #[test]
    fn cpu_and_gpu_ops_never_merge() {
        let mut g = OpGraph::new("mixed");
        let a = g.add_op("a", DeviceKind::Cpu, 1.0, 0);
        let b = g.add_op("b", DeviceKind::Gpu, 1.0, 0);
        g.add_edge(a, b, 1_000_000).unwrap();
        let g = g.freeze().unwrap();
        assert!(merge_edge(&g, a, b).is_err());
        let c = coarsen(&g, &CoarsenConfig::to_target(1));
        assert_eq!(c.coarse().op_count(), 2, "affinity boundary must survive");
    }

    #[test]
    fn kernel_and_cpu_ops_can_merge() {
        let mut g = OpGraph::new("host");
        let a = g.add_op("a", DeviceKind::Kernel, 1.0, 0);
        let b = g.add_op("b", DeviceKind::Cpu, 1.0, 0);
        g.add_edge(a, b, 10).unwrap();
        let g = g.freeze().unwrap();
        let merged = merge_edge(&g, a, b).unwrap();
        assert_eq!(merged.op_count(), 1);
        assert_eq!(merged.op(OpId::from_index(0)).kind(), DeviceKind::Cpu);
    }

    #[test]
    fn heavy_edges_merge_first() {
        // Diamond with one heavy branch: the heavy edge should be merged in
        // preference to light ones.
        let mut g = OpGraph::new("prio");
        let a = g.add_op("a", DeviceKind::Gpu, 1.0, 0);
        let b = g.add_op("b", DeviceKind::Gpu, 1.0, 0);
        let c = g.add_op("c", DeviceKind::Gpu, 1.0, 0);
        let d = g.add_op("d", DeviceKind::Gpu, 1.0, 0);
        g.add_edge(a, b, 1_000_000).unwrap(); // heavy
        g.add_edge(a, c, 10).unwrap();
        g.add_edge(b, d, 10).unwrap();
        g.add_edge(c, d, 10).unwrap();
        let g = g.freeze().unwrap();
        let picked = select_batch(&g, 1, i64::MAX, f64::INFINITY);
        assert_eq!(picked, vec![(a, b)]);
    }

    #[test]
    fn coarsen_to_one_vertex_on_a_chain() {
        // Corollary 3.6: any target is reachable; a chain can always shrink.
        let g = chain(32);
        let c = coarsen(&g, &CoarsenConfig::to_target(1));
        assert_eq!(c.coarse().op_count(), 1);
        assert_eq!(c.members(OpId::from_index(0)).len(), 32);
        // Members are in topological (here: chain) order.
        let members = c.members(OpId::from_index(0));
        for w in members.windows(2) {
            assert!(w[0].index() < w[1].index());
        }
    }

    #[test]
    fn already_small_graph_is_untouched() {
        let g = chain(5);
        let c = coarsen(&g, &CoarsenConfig::to_target(10));
        assert_eq!(c.coarse().op_count(), 5);
    }

    #[test]
    fn target_respected_not_overshot_much() {
        let g = chain(100);
        let c = coarsen(&g, &CoarsenConfig::to_target(40));
        // Per-round limit caps merges so we never go far below target.
        assert!(c.coarse().op_count() <= 40);
        assert!(
            c.coarse().op_count() >= 20,
            "overshoot: {}",
            c.coarse().op_count()
        );
    }
}
