//! Cycle-free batch graph coarsening (paper §3.3).
//!
//! Modern DNN DAGs have tens of thousands of operations, most of them tiny
//! (paper Table 1), which makes the Pesto ILP intractable at full scale. The
//! paper's answer is a coarsening algorithm that merges adjacent vertices
//! without ever creating a cycle, and in *batches* so the whole graph can be
//! shrunk in a few passes:
//!
//! * **Theorem 3.2** — merging a single edge `(u, v)` is safe iff that edge
//!   is the only path from `u` to `v` (checked by
//!   [`pesto_graph::FrozenGraph::edge_is_unique_path`]).
//! * **Theorem 3.5** — a whole *matching* of edges can be merged in one
//!   batch when per-edge local conditions on heights, in/out-degrees
//!   (condition ii) and a pairwise height/edge condition (iii) hold.
//!
//! Edges are prioritized for merging by their communication size: merging a
//! heavy edge colocates its endpoints and removes a potentially expensive
//! transfer (the "maintaining parallelizability" discussion in §3.3).
//!
//! The result is a [`Coarsening`], which keeps the member mapping so a
//! placement/schedule computed on the coarse graph can be *expanded* back to
//! the original operations — exactly how the paper applies the ILP solution
//! ("if the ILP suggests placing merged-vertex v on GPU-0, all vertices
//! merged into v are placed on GPU-0").
//!
//! # Example
//!
//! ```
//! use pesto_graph::{OpGraph, DeviceKind};
//! use pesto_coarsen::{coarsen, CoarsenConfig};
//!
//! # fn main() -> Result<(), pesto_graph::GraphError> {
//! let mut g = OpGraph::new("chain");
//! let ids: Vec<_> = (0..100)
//!     .map(|i| g.add_op(format!("op{i}"), DeviceKind::Gpu, 1.0, 8))
//!     .collect();
//! for w in ids.windows(2) {
//!     g.add_edge(w[0], w[1], 1024)?;
//! }
//! let g = g.freeze()?;
//! let c = coarsen(&g, &CoarsenConfig::to_target(10));
//! assert!(c.coarse().op_count() <= 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod mapping;

pub use batch::{coarsen, coarsen_with_stats, merge_edge, CoarsenConfig, CoarsenRound};
pub use mapping::Coarsening;
