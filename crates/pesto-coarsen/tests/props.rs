//! Property tests for coarsening: acyclicity, conservation, and valid plan
//! expansion on random DAGs.

use pesto_coarsen::{coarsen, CoarsenConfig, Coarsening};
use pesto_cost::CommModel;
use pesto_graph::{
    Cluster, DeviceKind, FrozenGraph, OpGraph, OpId, Placement, Plan, ScheduleOrder,
};
use pesto_sim::Simulator;
use proptest::prelude::*;

fn arb_dag() -> impl Strategy<Value = FrozenGraph> {
    (4usize..60)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n, 0..n, 1u64..1_000_000), 0..n * 3);
            let kinds = proptest::collection::vec(0u8..3, n);
            (Just(n), edges, kinds)
        })
        .prop_map(|(n, edges, kinds)| {
            let mut g = OpGraph::new("random");
            let ids: Vec<OpId> = (0..n)
                .map(|i| {
                    let kind = match kinds[i] {
                        0 => DeviceKind::Cpu,
                        1 => DeviceKind::Gpu,
                        _ => DeviceKind::Kernel,
                    };
                    g.add_op(format!("op{i}"), kind, (i % 7 + 1) as f64, 16)
                })
                .collect();
            for (a, b, bytes) in edges {
                let (u, v) = if a < b { (a, b) } else { (b, a) };
                if u != v {
                    let _ = g.add_edge(ids[u], ids[v], bytes);
                }
            }
            g.freeze().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coarsening always yields a valid DAG (apply_matching would panic on a
    /// cycle) and conserves total compute, memory, and op coverage.
    #[test]
    fn coarsening_conserves_and_stays_acyclic(g in arb_dag(), target in 1usize..20) {
        let c = coarsen(&g, &CoarsenConfig::to_target(target));
        let coarse = c.coarse();

        prop_assert!((coarse.total_compute_us() - g.total_compute_us()).abs() < 1e-6);
        prop_assert_eq!(coarse.total_memory_bytes(), g.total_memory_bytes());
        prop_assert_eq!(c.fine_op_count(), g.op_count());

        // Partition check.
        let mut seen = vec![false; g.op_count()];
        for cv in coarse.op_ids() {
            for &f in c.members(cv) {
                prop_assert!(!seen[f.index()]);
                seen[f.index()] = true;
                prop_assert_eq!(c.coarse_of(f), cv);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));

        // No merged vertex mixes GPU ops with CPU-resident ops.
        for cv in coarse.op_ids() {
            let gpu_members = c.members(cv).iter()
                .filter(|&&f| g.op(f).kind() == DeviceKind::Gpu)
                .count();
            prop_assert!(gpu_members == 0 || gpu_members == c.members(cv).len());
        }
    }

    /// Monotone progress: coarsening never increases the vertex count, and
    /// the coarse edge bytes never exceed the fine total.
    #[test]
    fn coarsening_shrinks(g in arb_dag()) {
        let c = coarsen(&g, &CoarsenConfig::to_target(1));
        prop_assert!(c.coarse().op_count() <= g.op_count());
        let fine_bytes: u64 = g.edges().iter().map(|e| e.2).sum();
        let coarse_bytes: u64 = c.coarse().edges().iter().map(|e| e.2).sum();
        prop_assert!(coarse_bytes <= fine_bytes);
    }

    /// Plans computed on the coarse graph expand to simulator-feasible fine
    /// plans (the paper's expansion rule never deadlocks).
    #[test]
    fn expanded_plans_simulate(g in arb_dag(), target in 2usize..12, devbits in any::<u64>()) {
        let c = coarsen(&g, &CoarsenConfig::to_target(target));
        let coarse = c.coarse();
        let cluster = Cluster::two_gpus();

        // Arbitrary affinity-respecting coarse placement.
        let mut placement = Placement::affinity_default(coarse, &cluster);
        for (i, cv) in coarse.op_ids().enumerate() {
            if coarse.op(cv).kind() == DeviceKind::Gpu && (devbits >> (i % 64)) & 1 == 1 {
                placement.set_device(cv, cluster.gpu(1));
            }
        }
        let order = ScheduleOrder::from_global_order(&placement, coarse.topo_order(), cluster.device_count());
        let coarse_plan = Plan::with_order(placement, order);

        let fine_plan = c.expand_plan(&coarse_plan, &cluster);
        prop_assert!(fine_plan.validate(&g, &cluster).is_ok());
        let sim = Simulator::new(&g, &cluster, CommModel::default_v100()).with_memory_check(false);
        let report = sim.run(&fine_plan);
        prop_assert!(report.is_ok(), "expanded plan deadlocked: {report:?}");
    }

    /// The colocation mapping is a true partition of the fine op set: every
    /// group is non-empty, every fine op appears in exactly one group, and
    /// the mapping round-trips both ways (`coarse_of` inverts `members`,
    /// and walking the groups reconstructs the whole fine id space). This
    /// is the invariant the sharded placer's partitioner builds on — its
    /// regions are unions of these groups, so a hole or an overlap here
    /// would silently drop or double-place ops.
    #[test]
    fn colocation_mapping_is_a_partition(g in arb_dag(), target in 1usize..40) {
        let c = coarsen(&g, &CoarsenConfig::to_target(target));
        let coarse = c.coarse();

        let mut owner: Vec<Option<OpId>> = vec![None; g.op_count()];
        for cv in coarse.op_ids() {
            prop_assert!(!c.members(cv).is_empty(), "group {cv:?} is empty");
            for &f in c.members(cv) {
                prop_assert!(
                    owner[f.index()].is_none(),
                    "fine op {f:?} in both {:?} and {cv:?}",
                    owner[f.index()]
                );
                owner[f.index()] = Some(cv);
                // Round-trip: the reverse map agrees with the group list.
                prop_assert_eq!(c.coarse_of(f), cv);
            }
        }
        // Every fine op landed in exactly one group.
        prop_assert!(owner.iter().all(Option::is_some));
        // Group sizes sum to the fine op count (no phantom members).
        let total: usize = coarse.op_ids().map(|cv| c.members(cv).len()).sum();
        prop_assert_eq!(total, g.op_count());
    }

    /// Identity coarsening is a fixed point of expansion.
    #[test]
    fn identity_expansion_fixed_point(g in arb_dag()) {
        let c = Coarsening::identity(&g);
        let cluster = Cluster::two_gpus();
        let p = Placement::affinity_default(&g, &cluster);
        prop_assert_eq!(c.expand_placement(&p), p);
    }
}
