//! End-to-end tests of the `pesto` CLI binary: generate → info → baseline
//! → simulate, exercising the JSON round trip through real process
//! boundaries.

use std::path::PathBuf;
use std::process::Command;

fn pesto_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pesto"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pesto-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_baseline_simulate_round_trip() {
    // generate
    let out = pesto_bin()
        .args(["generate", "nasnet", "3", "16"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let graph_path = tmp("graph.json");
    std::fs::write(&graph_path, &out.stdout).unwrap();

    // info
    let out = pesto_bin()
        .args(["info", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout);
    assert!(info.contains("NASNet-3-16"), "{info}");
    assert!(info.contains("ops:"));

    // baseline plan
    let out = pesto_bin()
        .args(["baseline", "m_sct", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let plan_path = tmp("plan.json");
    std::fs::write(&plan_path, &out.stdout).unwrap();

    // simulate with SVG export
    let svg_path = tmp("step.svg");
    let out = pesto_bin()
        .args([
            "simulate",
            graph_path.to_str().unwrap(),
            plan_path.to_str().unwrap(),
            "--svg",
            svg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sim = String::from_utf8_lossy(&out.stdout);
    assert!(sim.contains("per-step time:"), "{sim}");
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    for p in [graph_path, plan_path, svg_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = pesto_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = pesto_bin()
        .args(["info", "/nonexistent/graph.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn help_text_and_arg_parser_agree_on_every_flag() {
    let out = pesto_bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout).to_string();

    // `__flags` dumps the parser's declared flag table, one
    // `<command> <flag>...` line per subcommand.
    let out = pesto_bin().args(["__flags"]).output().unwrap();
    assert!(out.status.success());
    let declared = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(!declared.trim().is_empty());

    // Every flag the parser accepts appears on its command's usage line.
    for line in declared.lines() {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap();
        let usage_line = help
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("pesto {cmd}")))
            .unwrap_or_else(|| panic!("no usage line for `{cmd}` in:\n{help}"));
        for flag in parts {
            assert!(
                usage_line.contains(flag),
                "usage for `{cmd}` is missing {flag}: {usage_line}"
            );
        }
    }

    // ... and the help text advertises no flag the parser rejects.
    let known: std::collections::HashSet<&str> = declared
        .split_whitespace()
        .filter(|w| w.starts_with("--"))
        .collect();
    for token in help.split(|c: char| c.is_whitespace() || c == '[' || c == ']') {
        if token.starts_with("--") {
            assert!(
                known.contains(token),
                "help advertises undeclared flag {token}"
            );
        }
    }
}

#[test]
fn place_writes_trace_and_metrics_files() {
    // A 2-op graph takes the exact-MILP path, so the metrics dump carries
    // branch-and-bound gap samples, not just annealing events.
    let mut g = pesto::graph::OpGraph::new("tiny");
    let a = g.add_op("a", pesto::graph::DeviceKind::Gpu, 100.0, 16);
    let b = g.add_op("b", pesto::graph::DeviceKind::Gpu, 100.0, 16);
    g.add_edge(a, b, 1024).unwrap();
    let graph_path = tmp("tiny.json");
    std::fs::write(&graph_path, pesto::graph::to_json(&g.freeze().unwrap())).unwrap();

    let trace_path = tmp("trace.json");
    let metrics_path = tmp("metrics.json");
    let out = pesto_bin()
        .args([
            "place",
            graph_path.to_str().unwrap(),
            "--quick",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--verbose",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout stays a parseable plan even with telemetry flags on.
    let plan: serde_json::Value = serde_json::from_slice(&out.stdout).expect("plan JSON");
    assert!(plan.is_object());

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for span in [
        "pesto.place",
        "pipeline.profile",
        "pipeline.coarsen",
        "ilp.formulate",
        "pipeline.solve",
        "milp.solve",
        "pipeline.simulate",
    ] {
        assert!(
            events.iter().any(|e| e["name"] == span),
            "trace is missing span {span}"
        );
    }
    // Solver-progress counter track for Perfetto.
    assert!(events.iter().any(|e| {
        e["ph"] == "C"
            && e["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("solver gap"))
    }));

    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&metrics).expect("valid metrics JSON");
    assert!(
        parsed["counters"]["milp.nodes"].as_u64().unwrap_or(0) > 0,
        "{metrics}"
    );
    let events = parsed["solver_events"].as_array().expect("solver_events");
    assert!(
        events.iter().any(|e| e["kind"] == "gap"),
        "no MILP gap samples: {metrics}"
    );
    assert!(parsed["spans"].get("pipeline.solve").is_some());

    // --verbose printed the text summary and per-stage wall times.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stage"), "{err}");

    for p in [graph_path, trace_path, metrics_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn gpus_flag_is_validated() {
    let out = pesto_bin()
        .args(["baseline", "m_topo", "/dev/null", "--gpus", "abc"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --gpus"));
}

#[test]
fn obs_subcommand_fetches_metrics_and_flight_dumps() {
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    // A one-shot stand-in for pesto-serve: answers any GET with a fixed
    // body the way the real daemon does (Content-Length, close).
    let serve_once = |body: &'static str| -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(resp.as_bytes()).unwrap();
        });
        addr
    };

    // `obs metrics` prints the exposition to stdout.
    let addr = serve_once("serve_jobs_submitted_total 3\n");
    let out = pesto_bin()
        .args(["obs", "metrics", "--addr", &addr])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "serve_jobs_submitted_total 3\n"
    );

    // `obs dump --out FILE` writes the flight dump to disk.
    let addr = serve_once("{\"enabled\":true}\n");
    let dump_path = tmp("flight.json");
    let out = pesto_bin()
        .args([
            "obs",
            "dump",
            "--addr",
            &addr,
            "--out",
            dump_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&dump_path).unwrap(),
        "{\"enabled\":true}\n"
    );

    // A dead address is a *retryable* failure (exit 75), matching the
    // shared transient classification.
    let out = pesto_bin()
        .args(["obs", "metrics", "--addr", "127.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(75));
}
