//! End-to-end tests of the `pesto` CLI binary: generate → info → baseline
//! → simulate, exercising the JSON round trip through real process
//! boundaries.

use std::path::PathBuf;
use std::process::Command;

fn pesto_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pesto"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pesto-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_baseline_simulate_round_trip() {
    // generate
    let out = pesto_bin()
        .args(["generate", "nasnet", "3", "16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let graph_path = tmp("graph.json");
    std::fs::write(&graph_path, &out.stdout).unwrap();

    // info
    let out = pesto_bin()
        .args(["info", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout);
    assert!(info.contains("NASNet-3-16"), "{info}");
    assert!(info.contains("ops:"));

    // baseline plan
    let out = pesto_bin()
        .args(["baseline", "m_sct", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let plan_path = tmp("plan.json");
    std::fs::write(&plan_path, &out.stdout).unwrap();

    // simulate with SVG export
    let svg_path = tmp("step.svg");
    let out = pesto_bin()
        .args([
            "simulate",
            graph_path.to_str().unwrap(),
            plan_path.to_str().unwrap(),
            "--svg",
            svg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let sim = String::from_utf8_lossy(&out.stdout);
    assert!(sim.contains("per-step time:"), "{sim}");
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    for p in [graph_path, plan_path, svg_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = pesto_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = pesto_bin()
        .args(["info", "/nonexistent/graph.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn gpus_flag_is_validated() {
    let out = pesto_bin()
        .args(["baseline", "m_topo", "/dev/null", "--gpus", "abc"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --gpus"));
}
