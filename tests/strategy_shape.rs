//! Shape tests: the qualitative relationships the paper's evaluation rests
//! on must hold on reduced model variants — Pesto competitive with or
//! better than every baseline, Expert's structural weaknesses, and the
//! Baechi heuristic ordering.

use pesto::baselines::{expert, m_etf, m_sct, m_topo, random_placement};
use pesto::cost::CommModel;
use pesto::graph::Cluster;
use pesto::models::{figure2, ModelSpec};
use pesto::{evaluate_plan, Pesto, PestoConfig, StepOutcome};

fn ms(outcome: &StepOutcome) -> f64 {
    outcome.makespan_us().expect("strategy completed")
}

/// Runs every strategy on a reduced variant, returning (name, makespan µs).
fn head_to_head(spec: ModelSpec) -> Vec<(String, f64)> {
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    // Reduced unroll keeps the test fast; a moderate (not `fast()`) search
    // budget keeps Pesto representative of its real configuration.
    let graph = spec.generate_scaled(8, 1, 0.3);
    let config = PestoConfig {
        coarsen_target: 400,
        placer: pesto::ilp::PlacerConfig {
            hybrid: pesto::ilp::HybridConfig {
                iterations: 1200,
                restarts: 1,
                ..pesto::ilp::HybridConfig::default()
            },
            ..pesto::ilp::PlacerConfig::default()
        },
        refinement_passes: 2,
        ..PestoConfig::default()
    };
    let pesto = Pesto::new(config).place(&graph, &cluster).unwrap();
    vec![
        (
            "expert".into(),
            ms(&evaluate_plan(
                &graph,
                &cluster,
                &comm,
                &expert(&graph, &cluster),
                7,
            )),
        ),
        (
            "m_topo".into(),
            ms(&evaluate_plan(
                &graph,
                &cluster,
                &comm,
                &m_topo(&graph, &cluster),
                7,
            )),
        ),
        (
            "m_etf".into(),
            ms(&evaluate_plan(
                &graph,
                &cluster,
                &comm,
                &m_etf(&graph, &cluster, &comm),
                7,
            )),
        ),
        (
            "m_sct".into(),
            ms(&evaluate_plan(
                &graph,
                &cluster,
                &comm,
                &m_sct(&graph, &cluster, &comm),
                7,
            )),
        ),
        (
            "pesto".into(),
            ms(&evaluate_plan(&graph, &cluster, &comm, &pesto.plan, 7)),
        ),
    ]
}

#[test]
fn pesto_is_never_dominated_on_grid_models() {
    // The headline: on LSTM-grid models Pesto at least matches the best
    // baseline (paper: beats Expert by ~18-21%, Baechi by ~20-35%).
    let results = head_to_head(ModelSpec::rnnlm(2, 128));
    let pesto = results.iter().find(|(n, _)| n == "pesto").unwrap().1;
    let best_other = results
        .iter()
        .filter(|(n, _)| n != "pesto")
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    assert!(
        pesto <= best_other * 1.05,
        "pesto {pesto} must be within 5% of the best baseline {best_other}: {results:?}"
    );
}

#[test]
fn pesto_beats_expert_clearly_on_branchy_models() {
    // NASNet's branch parallelism is where placement quality matters most.
    let results = head_to_head(ModelSpec::nasnet(4, 24));
    let pesto = results.iter().find(|(n, _)| n == "pesto").unwrap().1;
    let exp = results.iter().find(|(n, _)| n == "expert").unwrap().1;
    assert!(
        pesto < exp,
        "pesto {pesto} must beat expert {exp}: {results:?}"
    );
}

#[test]
fn random_placement_is_worse_than_pesto() {
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    let graph = ModelSpec::transformer(2, 2, 128).generate(4, 1);
    let pesto = Pesto::new(PestoConfig::fast())
        .place(&graph, &cluster)
        .unwrap();
    let pesto_ms = ms(&evaluate_plan(&graph, &cluster, &comm, &pesto.plan, 7));
    // Average a few random placements; individually one could get lucky,
    // on average they pay heavy communication on the sequential stack.
    let mut total = 0.0;
    for seed in 0..5 {
        total += ms(&evaluate_plan(
            &graph,
            &cluster,
            &comm,
            &random_placement(&graph, &cluster, seed),
            7,
        ));
    }
    let random_avg = total / 5.0;
    assert!(
        pesto_ms < random_avg,
        "pesto {pesto_ms} vs random average {random_avg}"
    );
}

#[test]
fn figure2_toy_improvement_matches_paper_ballpark() {
    // On the Figure 2 toy, joint placement + scheduling improves 10-30%
    // over one-GPU serial execution (the paper reports 22-26% for its
    // hand-worked example).
    let cluster = Cluster::two_gpus();
    let _comm = CommModel::default_v100();
    let g = figure2();
    let pesto = Pesto::new(PestoConfig {
        coarsen_target: 8,
        profiler_iterations: None,
        ..PestoConfig::fast()
    })
    .place(&g, &cluster)
    .unwrap();
    let serial = g.total_compute_us();
    let improvement = 1.0 - pesto.makespan_us / serial;
    assert!(
        improvement > 0.10,
        "joint optimization should beat serial by >10%, got {:.1}% ({} vs {serial})",
        improvement * 100.0,
        pesto.makespan_us
    );
}

#[test]
fn expert_oom_shape_on_nasnet_variants() {
    // Figure 7's OOM story: Expert overloads one GPU on the two largest
    // NASNet variants but not on NASNet-6-148, while Pesto's balanced
    // placements fit all three. (Full-size variants; placement only —
    // no solver runs — so this is cheap.)
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    for (spec, expert_ooms) in [
        (ModelSpec::nasnet(6, 148), false),
        (ModelSpec::nasnet(6, 168), true),
        (ModelSpec::nasnet(4, 212), true),
    ] {
        let graph = spec.generate(32, 1);
        let outcome = evaluate_plan(&graph, &cluster, &comm, &expert(&graph, &cluster), 7);
        assert_eq!(
            outcome.is_oom(),
            expert_ooms,
            "{}: expert outcome {outcome:?}",
            spec.label()
        );
        // A memory-balanced split always exists for these variants.
        let msct = m_sct(&graph, &cluster, &comm);
        assert!(
            !evaluate_plan(&graph, &cluster, &comm, &msct, 7).is_oom(),
            "{}: balanced placement must fit",
            spec.label()
        );
    }
}

#[test]
fn single_gpu_models_fit_and_giant_models_do_not() {
    // §5.2: only RNNLM-2 and NMT-2 fit on one 16 GB GPU.
    let gpu_bytes = 16u64 * 1024 * 1024 * 1024;
    for spec in pesto::models::paper_variants() {
        let graph = spec.generate(spec.paper_batch(), 1);
        let fits = graph.total_memory_bytes() <= gpu_bytes;
        assert_eq!(
            fits,
            spec.fits_single_gpu_in_paper(),
            "{}: total {:.1} GiB",
            spec.label(),
            graph.total_memory_bytes() as f64 / (1u64 << 30) as f64
        );
    }
}
