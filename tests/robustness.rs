//! Robustness integration tests: the degradation ladder under a wall-clock
//! budget, post-outage plan repair, Monte-Carlo sweep determinism, and
//! degenerate inputs (empty graphs, deadlocked schedules, dead clusters).

use pesto::cost::CommModel;
use pesto::graph::{Cluster, DeviceKind, GraphError, OpGraph, Placement, Plan, ScheduleOrder};
use pesto::ilp::{HybridConfig, PlacerConfig, SolvePath};
use pesto::models::ModelSpec;
use pesto::sim::{FaultPlan, SimError, Simulator};
use pesto::{
    evaluate_plan, evaluate_robustness, repair_after_outage, Pesto, PestoConfig, PestoError,
    RobustnessConfig, StepOutcome,
};
use std::time::{Duration, Instant};

fn comm() -> CommModel {
    CommModel::default_v100()
}

#[test]
fn tight_budget_degrades_instead_of_overrunning() {
    // A search that would run for minutes (millions of annealing
    // iterations) under a sub-second budget: the ladder must hand back a
    // valid plan with the fallback recorded, in roughly the budget.
    let graph = ModelSpec::nasnet(3, 16).generate(32, 1);
    let cluster = Cluster::two_gpus();
    let budget = Duration::from_millis(800);
    let config = PestoConfig {
        placer: PlacerConfig {
            hybrid: HybridConfig {
                iterations: 2_000_000,
                restarts: 8,
                ..HybridConfig::default()
            },
            ..PlacerConfig::default()
        },
        time_budget: Some(budget),
        ..PestoConfig::fast()
    };
    let start = Instant::now();
    let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
    let elapsed = start.elapsed();
    assert!(
        outcome.degradation.is_some(),
        "a search this large cannot finish inside {budget:?}"
    );
    assert!(outcome.plan.validate(&graph, &cluster).is_ok());
    assert!(outcome.makespan_us > 0.0);
    // "~2x the budget": the deadline is cooperative, so allow the final
    // profiling/simulation work its share, but minutes would be a bug.
    assert!(
        elapsed < budget * 4,
        "ladder overran: {elapsed:?} for a {budget:?} budget"
    );
}

#[test]
fn zero_budget_lands_on_the_bottom_rung() {
    let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
    let cluster = Cluster::two_gpus();
    let config = PestoConfig {
        time_budget: Some(Duration::ZERO),
        ..PestoConfig::fast()
    };
    let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
    assert_eq!(outcome.path, SolvePath::SingleDevice);
    assert!(outcome.degradation.is_some());
    assert!(outcome.plan.validate(&graph, &cluster).is_ok());
}

#[test]
fn outage_kills_the_plan_and_repair_revives_it() {
    let graph = ModelSpec::transformer(2, 2, 64).generate(4, 1);
    let cluster = Cluster::homogeneous(3, 1 << 34);
    let outcome = Pesto::new(PestoConfig::fast())
        .place(&graph, &cluster)
        .unwrap();

    // Fail a GPU that actually hosts work.
    let failed = graph
        .op_ids()
        .map(|op| outcome.plan.placement.device(op))
        .find(|&d| d != cluster.cpu())
        .expect("some op runs on a GPU");

    // The original plan cannot survive the outage...
    let err = Simulator::new(&graph, &cluster, comm())
        .with_faults(FaultPlan::new(1).with_outage(failed, 0.0))
        .run(&outcome.plan)
        .unwrap_err();
    assert!(
        matches!(err, SimError::DeviceLost { device, .. } if device == failed),
        "expected DeviceLost for {failed:?}, got {err}"
    );

    // ...but the repaired plan runs on the survivors. A small budget buys
    // the bounded local search on top of the greedy re-placement.
    let repair = repair_after_outage(
        &graph,
        &cluster,
        comm(),
        &outcome.plan,
        failed,
        Duration::from_millis(200),
    )
    .unwrap();
    assert!(repair.moved_ops > 0, "the failed device hosted ops");
    assert_eq!(repair.cluster.gpu_count(), cluster.gpu_count() - 1);
    assert!(repair.plan.validate(&graph, &repair.cluster).is_ok());
    let report = Simulator::new(&graph, &repair.cluster, comm())
        .run(&repair.plan)
        .unwrap();
    assert!((report.makespan_us - repair.makespan_us).abs() < 1e-9);
}

#[test]
fn perturbation_sweep_is_reproducible_end_to_end() {
    let graph = ModelSpec::nmt(1, 64).generate(4, 1);
    let cluster = Cluster::two_gpus();
    let outcome = Pesto::new(PestoConfig::fast())
        .place(&graph, &cluster)
        .unwrap();
    let config = RobustnessConfig {
        draws: 24,
        ..RobustnessConfig::default()
    };
    let a = evaluate_robustness(&graph, &cluster, comm(), &outcome.plan, &config).unwrap();
    let b = evaluate_robustness(&graph, &cluster, comm(), &outcome.plan, &config).unwrap();
    assert_eq!(a.p50_us, b.p50_us);
    assert_eq!(a.p95_us, b.p95_us);
    assert_eq!(a.p99_us, b.p99_us);
    assert_eq!(a.device_sensitivity_us, b.device_sensitivity_us);
    assert!(a.clean_makespan_us > 0.0);
    assert!(a.p95_us >= a.p50_us);
}

#[test]
fn empty_graph_is_a_typed_error() {
    let err = OpGraph::new("empty").freeze().unwrap_err();
    assert_eq!(err, GraphError::Empty);
}

#[test]
fn cpu_only_cluster_is_rejected_not_panicked() {
    let graph = ModelSpec::rnnlm(1, 64).generate(4, 1);
    let full = Cluster::homogeneous(1, 1 << 34);
    let cpu_only = full.without_gpu(full.gpus()[0]).unwrap();
    let err = Pesto::new(PestoConfig::fast())
        .place(&graph, &cpu_only)
        .unwrap_err();
    assert_eq!(err, PestoError::NoGpus);
}

#[test]
fn deadlocked_schedule_names_the_blocked_op_and_fails_cleanly() {
    // b depends on a but is ordered first on the same device: b is the
    // genuinely blocked op.
    let mut g = OpGraph::new("deadlock");
    let a = g.add_op("a", DeviceKind::Gpu, 1.0, 0);
    let b = g.add_op("b", DeviceKind::Gpu, 1.0, 0);
    g.add_edge(a, b, 1).unwrap();
    let g = g.freeze().unwrap();
    let cluster = Cluster::two_gpus();
    let plan = Plan::with_order(
        Placement::affinity_default(&g, &cluster),
        ScheduleOrder::from_vecs(vec![vec![], vec![b, a], vec![]]),
    );

    let err = Simulator::new(&g, &cluster, comm()).run(&plan).unwrap_err();
    assert_eq!(err, SimError::Deadlock(b));

    // The harness-facing wrapper reports it as a failure, not a crash.
    match evaluate_plan(&g, &cluster, &comm(), &plan, 0) {
        StepOutcome::Failed { reason } => assert!(!reason.is_empty()),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn pipelined_spans_feed_the_drift_detector() {
    use pesto::cost::DriftConfig;
    use pesto::obs::Obs;
    use pesto::{replace_after_drift_from_report, replace_after_drift_observed};

    let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
    let cluster = Cluster::two_gpus();
    let config = PestoConfig {
        pipeline_steps: 4,
        ..PestoConfig::fast()
    };
    let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
    let expected: Vec<f64> = graph.op_ids().map(|id| graph.op(id).compute_us()).collect();

    // The pipelined run surfaced its spans as a ready-made observation
    // vector: one entry per op, every executed op measured.
    let observed = outcome
        .observed_op_us
        .clone()
        .expect("pipelined run must record observations");
    assert_eq!(observed.len(), graph.op_count());
    assert!(observed.iter().all(Option::is_some));

    let drift = DriftConfig::default();
    let search = HybridConfig {
        iterations: 300,
        restarts: 1,
        ..HybridConfig::default()
    };

    // Clean run: the simulator reproduces the profile exactly, so the
    // 4-sigma detector must stay quiet and the plan must come back
    // untouched.
    let clean = replace_after_drift_observed(
        &graph,
        &expected,
        &observed,
        &cluster,
        comm(),
        &outcome.plan,
        &drift,
        search.clone(),
        &Obs::disabled(),
    )
    .unwrap();
    assert!(
        !clean.report.any(),
        "clean run flagged {:?}",
        clean.report.drifted
    );
    assert!(!clean.replaced);
    assert_eq!(clean.plan.placement, outcome.plan.placement);

    // Straggle the device that runs the heaviest op: every span on it
    // stretches 3x, far past the dispersion threshold (max ~0.8 of the
    // expectation), and the adapter must carry that from the SimReport
    // into a firing detector.
    let heavy = graph
        .op_ids()
        .max_by(|&a, &b| {
            graph
                .op(a)
                .compute_us()
                .total_cmp(&graph.op(b).compute_us())
        })
        .unwrap();
    let victim = outcome.plan.placement.device(heavy);
    let straggled = Simulator::new(&graph, &cluster, comm())
        .with_steps(4)
        .with_faults(FaultPlan::new(9).with_straggler(victim, 3.0))
        .run(&outcome.plan)
        .unwrap();
    let drifted = replace_after_drift_from_report(
        &graph,
        &expected,
        &straggled,
        &cluster,
        comm(),
        &outcome.plan,
        &drift,
        search,
        &Obs::disabled(),
    )
    .unwrap();
    assert!(
        drifted.report.any(),
        "a 3x straggler must trip the detector (max drift {:.3})",
        drifted.report.max_drift_frac
    );
    assert!(drifted.report.drifted.contains(&heavy.index()));
    // Whatever the incremental search decided, the returned plan is
    // never worse than the old one under the observed times.
    assert!(drifted.makespan_us <= drifted.old_makespan_us + 1e-9);
}
