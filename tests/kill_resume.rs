//! Kill-and-resume integration test: a checkpointed `pesto place` run is
//! SIGKILLed mid-search at a real process boundary, resumed from its
//! checkpoint file, and must finish no worse than an uninterrupted run
//! given the same iteration budget (with the same seed the two are in
//! fact identical — resume is deterministic).

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn pesto_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pesto"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pesto-kill-test-{}-{name}", std::process::id()));
    p
}

/// The offline stand-in serde_json serializes everything to "" and parses
/// nothing, so the CLI's graph/checkpoint files are unusable there.
fn serde_json_available() -> bool {
    serde_json::to_string(&1u8)
        .map(|s| !s.is_empty())
        .unwrap_or(false)
}

/// Pulls `X.XX` out of the CLI's `simulated per-step time X.XX ms` line.
fn step_ms(stderr: &str) -> f64 {
    let tail = stderr
        .split("per-step time ")
        .nth(1)
        .unwrap_or_else(|| panic!("no per-step time in stderr: {stderr}"));
    tail.split(" ms")
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable per-step time in stderr: {stderr}"))
}

#[test]
fn sigkilled_search_resumes_and_matches_the_uninterrupted_run() {
    if !serde_json_available() {
        return;
    }

    let out = pesto_bin()
        .args(["generate", "transformer", "2", "2", "128"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let graph_path = tmp("graph.json");
    std::fs::write(&graph_path, &out.stdout).unwrap();
    let ck = tmp("search.ckpt.json");
    let _ = std::fs::remove_file(&ck);

    let graph = graph_path.to_str().unwrap();
    let iters = "60000";
    let base = |cmd: &mut Command| {
        cmd.args(["place", graph, "--quick", "--iters", iters]);
    };

    // Phase 1: start a checkpointed run, wait for the first snapshot to
    // land on disk, then SIGKILL the process mid-search.
    let mut cmd = pesto_bin();
    base(&mut cmd);
    let mut child = cmd
        .args([
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "25",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_early = false;
    while Instant::now() < deadline && !ck.exists() {
        if child.try_wait().unwrap().is_some() {
            finished_early = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().ok(); // SIGKILL: no cleanup handlers run
    let _ = child.wait();
    // Even if the run won the race and completed, its final checkpoint is
    // on disk, so the resume path below is still exercised; note which
    // case we hit for debugging.
    assert!(
        ck.exists(),
        "no checkpoint appeared within 120 s (finished_early={finished_early})"
    );

    // Phase 2: resume from the snapshot and run to completion.
    let mut cmd = pesto_bin();
    base(&mut cmd);
    let resumed = cmd
        .args(["--checkpoint", ck.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    let resumed_err = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "{resumed_err}");
    assert!(
        resumed_err.contains("(resumed from checkpoint)"),
        "resume not acknowledged: {resumed_err}"
    );
    let resumed_ms = step_ms(&resumed_err);

    // Phase 3: an uninterrupted run with the same budget and no
    // checkpoint. Same seed, same iteration budget: the resumed search
    // must never end up worse.
    let mut cmd = pesto_bin();
    base(&mut cmd);
    let cold = cmd.output().unwrap();
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold.status.success(), "{cold_err}");
    let cold_ms = step_ms(&cold_err);

    assert!(
        resumed_ms <= cold_ms + 1e-6,
        "resumed run ({resumed_ms} ms) lost to a cold restart ({cold_ms} ms)"
    );

    for p in [graph_path, ck] {
        let _ = std::fs::remove_file(p);
    }
}
