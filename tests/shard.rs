//! End-to-end tests for the hierarchical sharded placement path: a
//! mid-size generated graph goes through partition → per-region solve →
//! stitch → global refine, and the result must be a valid, deterministic,
//! competitive plan.

use pesto::cost::CommModel;
use pesto::graph::{Cluster, FrozenGraph};
use pesto::ilp::SolvePath;
use pesto::models::ModelSpec;
use pesto::shard::ShardConfig;
use pesto::{evaluate_plan, Pesto, PestoConfig};

const EVAL_SEED: u64 = 7;

/// A mid-size RNNLM slice (~900 ops): big enough to split into several
/// regions under the test cap, small enough to keep the test fast.
fn graph() -> FrozenGraph {
    let spec = ModelSpec::rnnlm(2, 512);
    spec.generate_scaled(spec.paper_batch(), 1, 0.2)
}

fn sharded_config(threads: usize) -> PestoConfig {
    PestoConfig {
        shard: Some(ShardConfig {
            region_cap: 300,
            region_coarsen_target: 64,
            region_iterations: 400,
            ..ShardConfig::default()
        }),
        solver_threads: threads,
        ..PestoConfig::fast()
    }
}

#[test]
fn sharded_plan_is_valid_and_no_worse_than_msct() {
    let graph = graph();
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();

    let outcome = Pesto::new(sharded_config(1))
        .place(&graph, &cluster)
        .expect("sharded placement succeeds");

    // The large graph actually took the sharded path, and said so.
    assert_eq!(outcome.path, SolvePath::Sharded);
    let report = outcome
        .shard
        .as_ref()
        .expect("sharded outcome carries report");
    assert!(report.regions.len() > 1, "cap 300 on ~900 ops must split");
    assert_eq!(
        report.regions.iter().map(|r| r.ops).sum::<usize>(),
        graph.op_count(),
        "regions partition the op set"
    );

    // Every op is placed and the plan is memory-feasible.
    assert_eq!(outcome.plan.placement.op_count(), graph.op_count());
    assert!(outcome
        .plan
        .placement
        .oom_devices(&graph, &cluster)
        .is_empty());
    assert!(outcome.makespan_us.is_finite() && outcome.makespan_us > 0.0);

    // Sharded stages are surfaced in the stage timings.
    let stages: Vec<&str> = outcome.stage_timings.iter().map(|t| t.stage).collect();
    for stage in ["partition", "solve", "stitch", "simulate"] {
        assert!(
            stages.contains(&stage),
            "missing stage {stage} in {stages:?}"
        );
    }

    // Quality: the stitched+refined plan is no worse than the mSCT
    // baseline on the same graph. Everything here is deterministic
    // (fixed seeds, no wall-clock budget), so this is a stable bound.
    let msct = pesto::baselines::m_sct(&graph, &cluster, &comm);
    let msct_us = evaluate_plan(&graph, &cluster, &comm, &msct, EVAL_SEED)
        .makespan_us()
        .expect("mSCT simulates");
    assert!(
        outcome.makespan_us <= msct_us + 1e-6,
        "sharded {:.1} µs worse than mSCT {msct_us:.1} µs",
        outcome.makespan_us
    );
}

#[test]
fn sharded_solve_is_deterministic_for_fixed_seed_and_threads() {
    let graph = graph();
    let cluster = Cluster::two_gpus();

    // Same seed, same config: bit-identical placements — and the thread
    // count must not matter either (region results land in indexed slots;
    // budget-free runs have no wall-clock dependence).
    let place = |threads: usize| {
        Pesto::new(sharded_config(threads))
            .place(&graph, &cluster)
            .expect("sharded placement succeeds")
    };
    let a = place(1);
    let b = place(1);
    let c = place(3);
    assert_eq!(
        a.plan.placement, b.plan.placement,
        "same seed+threads must repeat"
    );
    assert_eq!(
        a.plan.placement, c.plan.placement,
        "thread count must not change the plan"
    );
    assert_eq!(a.makespan_us, b.makespan_us);
    assert_eq!(a.makespan_us, c.makespan_us);
}

#[test]
fn graphs_under_the_region_cap_stay_monolithic() {
    let spec = ModelSpec::nasnet(3, 16);
    let graph = spec.generate(32, 42);
    let cluster = Cluster::two_gpus();

    let config = PestoConfig {
        shard: Some(ShardConfig {
            region_cap: graph.op_count() + 1,
            ..ShardConfig::default()
        }),
        ..PestoConfig::fast()
    };
    let outcome = Pesto::new(config)
        .place(&graph, &cluster)
        .expect("monolithic placement succeeds");
    assert_ne!(outcome.path, SolvePath::Sharded);
    assert!(outcome.shard.is_none());
}

/// Chrome-trace validity for a sharded multi-worker run: the per-worker
/// telemetry merges into one trace where every span event sits in a lane
/// with a `thread_name` metadata row (no orphan tids), the shard region
/// solves land in the named `shard-worker-*` lanes, and spans within a
/// lane are properly nested (a span never half-overlaps another on the
/// same thread — the invariant `ph:"X"` stacks need to render).
#[test]
fn sharded_chrome_trace_lands_every_span_in_a_named_lane() {
    use pesto::obs::Obs;
    use serde_json::Value;

    let graph = graph();
    let cluster = Cluster::two_gpus();
    let mut config = sharded_config(3);
    config.obs = Obs::enabled();
    let obs = config.obs.clone();
    let outcome = Pesto::new(config)
        .place(&graph, &cluster)
        .expect("sharded placement succeeds");
    assert_eq!(outcome.path, SolvePath::Sharded);

    // Every spawned region worker announced its lane, and there were
    // several of them (threads=3 against >1 regions).
    let lanes = obs.lane_names();
    let worker_lanes = lanes
        .values()
        .filter(|n| n.starts_with("shard-worker-"))
        .count();
    assert!(
        worker_lanes >= 2,
        "expected >=2 worker lanes, got {lanes:?}"
    );

    let trace = obs.chrome_trace();
    let v: Value = serde_json::from_str(&trace).expect("trace parses as JSON");
    let Some(Value::Seq(events)) = v.get("traceEvents").cloned() else {
        panic!("no traceEvents array");
    };

    // Pass 1: collect the named tids from metadata rows.
    let mut named_tids = std::collections::HashMap::new();
    for e in &events {
        if e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("name").and_then(Value::as_str) == Some("thread_name")
        {
            let tid = e.get("tid").and_then(Value::as_u64).unwrap();
            let label = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            named_tids.insert(tid, label);
        }
    }

    // Pass 2: every span event sits in a named lane, and the region
    // solves specifically in shard-worker lanes.
    let mut by_tid: std::collections::HashMap<u64, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    let mut region_solves = 0usize;
    for e in &events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let tid = e.get("tid").and_then(Value::as_u64).unwrap();
        let lane = named_tids
            .get(&tid)
            .unwrap_or_else(|| panic!("span on unnamed tid {tid} — orphan lane"));
        let name = e.get("name").and_then(Value::as_str).unwrap();
        if name == "shard.region-solve" {
            assert!(
                lane.starts_with("shard-worker-"),
                "region solve recorded in lane {lane:?}"
            );
            region_solves += 1;
        }
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        let dur = e.get("dur").and_then(Value::as_f64).unwrap();
        by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    let report = outcome.shard.as_ref().expect("shard report");
    assert_eq!(
        region_solves,
        report.regions.len(),
        "one region-solve span per region"
    );

    // Pass 3: proper nesting per lane — any two spans on one tid are
    // either disjoint or one contains the other. Walk each lane with a
    // stack of enclosing-span end times (the render model of `ph:"X"`).
    let eps = 1e-6;
    for (tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut open: Vec<f64> = Vec::new();
        for (start, end) in spans {
            while open.last().is_some_and(|&e| e <= start + eps) {
                open.pop();
            }
            if let Some(&enclosing) = open.last() {
                assert!(
                    end <= enclosing + eps,
                    "span [{start},{end}] half-overlaps its enclosing span \
                     (ends {enclosing}) on tid {tid}"
                );
            }
            open.push(end);
        }
    }
}
