//! End-to-end tests for the hierarchical sharded placement path: a
//! mid-size generated graph goes through partition → per-region solve →
//! stitch → global refine, and the result must be a valid, deterministic,
//! competitive plan.

use pesto::cost::CommModel;
use pesto::graph::{Cluster, FrozenGraph};
use pesto::ilp::SolvePath;
use pesto::models::ModelSpec;
use pesto::shard::ShardConfig;
use pesto::{evaluate_plan, Pesto, PestoConfig};

const EVAL_SEED: u64 = 7;

/// A mid-size RNNLM slice (~900 ops): big enough to split into several
/// regions under the test cap, small enough to keep the test fast.
fn graph() -> FrozenGraph {
    let spec = ModelSpec::rnnlm(2, 512);
    spec.generate_scaled(spec.paper_batch(), 1, 0.2)
}

fn sharded_config(threads: usize) -> PestoConfig {
    PestoConfig {
        shard: Some(ShardConfig {
            region_cap: 300,
            region_coarsen_target: 64,
            region_iterations: 400,
            ..ShardConfig::default()
        }),
        solver_threads: threads,
        ..PestoConfig::fast()
    }
}

#[test]
fn sharded_plan_is_valid_and_no_worse_than_msct() {
    let graph = graph();
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();

    let outcome = Pesto::new(sharded_config(1))
        .place(&graph, &cluster)
        .expect("sharded placement succeeds");

    // The large graph actually took the sharded path, and said so.
    assert_eq!(outcome.path, SolvePath::Sharded);
    let report = outcome.shard.as_ref().expect("sharded outcome carries report");
    assert!(report.regions.len() > 1, "cap 300 on ~900 ops must split");
    assert_eq!(
        report.regions.iter().map(|r| r.ops).sum::<usize>(),
        graph.op_count(),
        "regions partition the op set"
    );

    // Every op is placed and the plan is memory-feasible.
    assert_eq!(outcome.plan.placement.op_count(), graph.op_count());
    assert!(outcome
        .plan
        .placement
        .oom_devices(&graph, &cluster)
        .is_empty());
    assert!(outcome.makespan_us.is_finite() && outcome.makespan_us > 0.0);

    // Sharded stages are surfaced in the stage timings.
    let stages: Vec<&str> = outcome.stage_timings.iter().map(|t| t.stage).collect();
    for stage in ["partition", "solve", "stitch", "simulate"] {
        assert!(stages.contains(&stage), "missing stage {stage} in {stages:?}");
    }

    // Quality: the stitched+refined plan is no worse than the mSCT
    // baseline on the same graph. Everything here is deterministic
    // (fixed seeds, no wall-clock budget), so this is a stable bound.
    let msct = pesto::baselines::m_sct(&graph, &cluster, &comm);
    let msct_us = evaluate_plan(&graph, &cluster, &comm, &msct, EVAL_SEED)
        .makespan_us()
        .expect("mSCT simulates");
    assert!(
        outcome.makespan_us <= msct_us + 1e-6,
        "sharded {:.1} µs worse than mSCT {msct_us:.1} µs",
        outcome.makespan_us
    );
}

#[test]
fn sharded_solve_is_deterministic_for_fixed_seed_and_threads() {
    let graph = graph();
    let cluster = Cluster::two_gpus();

    // Same seed, same config: bit-identical placements — and the thread
    // count must not matter either (region results land in indexed slots;
    // budget-free runs have no wall-clock dependence).
    let place = |threads: usize| {
        Pesto::new(sharded_config(threads))
            .place(&graph, &cluster)
            .expect("sharded placement succeeds")
    };
    let a = place(1);
    let b = place(1);
    let c = place(3);
    assert_eq!(a.plan.placement, b.plan.placement, "same seed+threads must repeat");
    assert_eq!(a.plan.placement, c.plan.placement, "thread count must not change the plan");
    assert_eq!(a.makespan_us, b.makespan_us);
    assert_eq!(a.makespan_us, c.makespan_us);
}

#[test]
fn graphs_under_the_region_cap_stay_monolithic() {
    let spec = ModelSpec::nasnet(3, 16);
    let graph = spec.generate(32, 42);
    let cluster = Cluster::two_gpus();

    let config = PestoConfig {
        shard: Some(ShardConfig {
            region_cap: graph.op_count() + 1,
            ..ShardConfig::default()
        }),
        ..PestoConfig::fast()
    };
    let outcome = Pesto::new(config)
        .place(&graph, &cluster)
        .expect("monolithic placement succeeds");
    assert_ne!(outcome.path, SolvePath::Sharded);
    assert!(outcome.shard.is_none());
}
