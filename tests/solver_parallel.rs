//! Regression tests for the parallel solver hot paths.
//!
//! Two contracts are pinned here, at the workspace level where both the
//! LP and MILP layers are visible together:
//!
//! * The parallel simplex kernels (pricing / ratio test / pivot) are
//!   **bit-identical** to the serial ones — same objective bits, same
//!   value bits, same pivot count — for any instance, forced on and off
//!   via [`pesto::lp::set_parallel_override`].
//! * `MilpConfig { threads: 1 }` **is** the historical serial search:
//!   node-for-node identical to the goldens captured before the parallel
//!   path existed. `threads > 1` must reach the same optimum.

use pesto::lp::{set_parallel_override, Problem, Relation, Sense, VarId};
use pesto::milp::{MilpConfig, MilpProblem, MilpStatus};
use proptest::prelude::*;
use std::sync::Once;

/// The LP kernel pool is process-global and sized once; every test in
/// this binary shares a 2-thread pool so the parallel kernels actually
/// engage (`rayon::current_num_threads() > 1` is part of their gate).
fn ensure_pool() {
    static POOL: Once = Once::new();
    POOL.call_once(|| {
        pesto::lp::configure_threads(2);
    });
}

/// Deterministic xorshift64* stream in `[0, 1)`.
fn rng_stream(mut state: u64) -> impl FnMut() -> f64 {
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A dense, feasible, bounded random LP (positive costs and coefficients).
fn dense_lp(vars: usize, constraints: usize, seed: u64) -> Problem {
    let mut next = rng_stream(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut lp = Problem::new(Sense::Maximize);
    let ids: Vec<VarId> = (0..vars)
        .map(|j| lp.add_var(format!("x{j}"), 0.0, f64::INFINITY, 1.0 + next()))
        .collect();
    for _ in 0..constraints {
        let terms: Vec<(VarId, f64)> = ids.iter().map(|&v| (v, 0.05 + next())).collect();
        let rhs = 0.3 * terms.iter().map(|(_, a)| a).sum::<f64>();
        lp.add_constraint(terms, Relation::Le, rhs);
    }
    lp
}

/// The branchy two-row knapsack family the MILP goldens are stated on.
fn branchy(n: usize) -> MilpProblem {
    let mut lp = Problem::new(Sense::Maximize);
    let vars: Vec<VarId> = (0..n)
        .map(|i| lp.add_var(format!("v{i}"), 0.0, 1.0, (3 * i % 7 + 1) as f64))
        .collect();
    let t1: Vec<(VarId, f64)> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (2 * i % 5 + 1) as f64))
        .collect();
    lp.add_constraint(t1, Relation::Le, 1.3 * n as f64);
    let t2: Vec<(VarId, f64)> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i % 3 + 1) as f64))
        .collect();
    lp.add_constraint(t2, Relation::Le, 0.9 * n as f64);
    MilpProblem::new(lp, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel simplex kernels are bit-identical to serial — objective
    /// bits, value bits, and pivot count — on random dense instances.
    #[test]
    fn parallel_simplex_is_bit_identical_to_serial(
        seed in 0u64..4096,
        vars in 20usize..70,
        constraints in 10usize..40,
    ) {
        ensure_pool();
        let lp = dense_lp(vars, constraints, seed);

        set_parallel_override(Some(false));
        let serial = lp.solve();
        set_parallel_override(Some(true));
        let parallel = lp.solve();
        set_parallel_override(None);

        let serial = serial.expect("dense LP solves serially");
        let parallel = parallel.expect("dense LP solves in parallel");
        prop_assert_eq!(serial.objective.to_bits(), parallel.objective.to_bits());
        prop_assert_eq!(serial.pivots, parallel.pivots);
        prop_assert_eq!(serial.values.len(), parallel.values.len());
        for (a, b) in serial.values.iter().zip(&parallel.values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// `threads = 1` reproduces the captured serial goldens node for node:
/// same objective, same node count, same solution vector. Any drift here
/// means the parallel refactor changed the deterministic contract path.
#[test]
fn threads_one_matches_serial_goldens_node_for_node() {
    let goldens: [(usize, f64, usize, &[f64]); 2] = [
        (
            10,
            22.0,
            7,
            &[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0],
        ),
        (
            14,
            33.0,
            87,
            &[
                1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0,
            ],
        ),
    ];
    for (n, objective, nodes, values) in goldens {
        let sol = branchy(n)
            .solve(&MilpConfig::default())
            .expect("branchy knapsack solves");
        assert_eq!(sol.status, MilpStatus::Optimal, "n={n}");
        assert_eq!(sol.objective, objective, "n={n}");
        assert_eq!(sol.nodes_explored, nodes, "n={n} node count drifted");
        assert_eq!(sol.values, values, "n={n} solution vector drifted");
    }
}

/// The concurrent branch-and-bound proves the same optimum the serial
/// search does (node order may differ; the objective may not).
#[test]
fn threaded_branch_and_bound_reaches_the_serial_optimum() {
    ensure_pool();
    for n in [10, 14, 18] {
        let problem = branchy(n);
        let serial = problem.solve(&MilpConfig::default()).unwrap();
        for threads in [2, 3] {
            let par = problem
                .solve(&MilpConfig {
                    threads,
                    ..MilpConfig::default()
                })
                .unwrap();
            assert_eq!(par.status, MilpStatus::Optimal, "n={n} threads={threads}");
            assert!(
                (par.objective - serial.objective).abs() < 1e-9,
                "n={n} threads={threads}: {} vs {}",
                par.objective,
                serial.objective
            );
        }
    }
}
