//! Property tests for the crash-safe checkpoint format: a checkpoint
//! serialized to disk and loaded back must be bit-identical, and resuming
//! the hybrid search from the loaded state must land on exactly the plan
//! the uninterrupted run found — for any seed.

use pesto::cost::CommModel;
use pesto::graph::Cluster;
use pesto::ilp::{CheckpointSink, HybridConfig, HybridSearchState, HybridSolver};
use pesto::models::ModelSpec;
use pesto::{
    graph_fingerprint, load_checkpoint, save_checkpoint, CheckpointIncumbent, SearchCheckpoint,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn comm() -> CommModel {
    CommModel::default_v100()
}

/// The offline stand-in serde_json serializes everything to "" and parses
/// nothing; the file round trip only means something with the real crate.
fn serde_json_available() -> bool {
    serde_json::to_string(&1u8)
        .map(|s| !s.is_empty())
        .unwrap_or(false)
}

fn ckpt_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pesto-ckpt-prop-{}-{tag}-{seed}.json",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// serialize → deserialize → resume reproduces the incumbent
    /// bit-identically, whatever the seed.
    #[test]
    fn file_round_trip_resumes_bit_identically(seed in 0u64..1024) {
        if !serde_json_available() {
            return Ok(());
        }
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let cluster = Cluster::two_gpus();
        let seen: Arc<Mutex<Vec<HybridSearchState>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let cfg = HybridConfig {
            seed,
            checkpoint_every: 40,
            checkpoint_sink: Some(CheckpointSink::new(move |s| {
                sink_seen.lock().unwrap().push(s.clone())
            })),
            ..HybridConfig::quick()
        };
        let full = HybridSolver::new(cfg).solve(&graph, &cluster, &comm()).unwrap();

        // A genuine mid-run snapshot: at least one chain still unfinished.
        let mid = {
            let states = seen.lock().unwrap();
            match states
                .iter()
                .find(|s| s.restarts.iter().any(|r| !r.finished))
            {
                Some(s) => s.clone(),
                // The whole search fit inside one cadence window; nothing
                // mid-run to snapshot for this seed.
                None => return Ok(()),
            }
        };

        let fingerprint = graph_fingerprint(&graph);
        let mut ckpt = SearchCheckpoint::new(fingerprint, seed);
        ckpt.hybrid = Some(mid);
        ckpt.incumbent = Some(CheckpointIncumbent {
            plan: full.plan.clone(),
            makespan_us: Some(full.makespan_us),
        });

        let path = ckpt_path("round-trip", seed);
        save_checkpoint(&path, &ckpt).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded, &ckpt, "checkpoint must round-trip bit-identically");
        loaded.verify(fingerprint, seed).unwrap();

        // Resuming from the state that crossed a serialize/deserialize
        // boundary must match the uninterrupted run exactly.
        let resumed = HybridSolver::new(HybridConfig {
            seed,
            ..HybridConfig::quick()
        })
        .resume(&graph, &cluster, &comm(), loaded.hybrid.unwrap())
        .unwrap();
        prop_assert_eq!(
            &resumed.plan,
            &full.plan,
            "resume from disk diverged from the uninterrupted run"
        );
        prop_assert!((resumed.makespan_us - full.makespan_us).abs() < 1e-12);
    }

    /// The checkpoint refuses to resume a different job: any disagreement
    /// in graph fingerprint or seed is a typed error, never a silent
    /// cross-wiring of two searches.
    #[test]
    fn verify_rejects_any_other_job(seed in 0u64..1024, other in 0u64..1024) {
        let graph = ModelSpec::transformer(1, 2, 64).generate(4, 1);
        let fingerprint = graph_fingerprint(&graph);
        let ckpt = SearchCheckpoint::new(fingerprint, seed);
        ckpt.verify(fingerprint, seed).unwrap();
        if other != seed {
            prop_assert!(ckpt.verify(fingerprint, other).is_err());
        }
        if other != fingerprint {
            prop_assert!(ckpt.verify(other, seed).is_err());
        }
    }
}
