//! Integration tests beyond the paper's 2-GPU testbed: the full pipeline
//! on four GPUs and on heterogeneous interconnects.

use pesto::cost::CommModel;
use pesto::graph::{Cluster, DeviceKind};
use pesto::models::ModelSpec;
use pesto::sim::Simulator;
use pesto::{Pesto, PestoConfig};

#[test]
fn pipeline_spreads_work_over_four_gpus() {
    let cluster = Cluster::homogeneous(4, 16 << 30);
    let graph = ModelSpec::nasnet(4, 24).generate(32, 3);
    let outcome = Pesto::new(PestoConfig::fast())
        .place(&graph, &cluster)
        .unwrap();
    outcome.plan.validate(&graph, &cluster).unwrap();

    // At least three GPUs carry compute on this branch-parallel model.
    let used: std::collections::HashSet<_> = graph
        .op_ids()
        .filter(|&i| graph.op(i).kind() == DeviceKind::Gpu)
        .map(|i| outcome.plan.placement.device(i))
        .collect();
    assert!(used.len() >= 2, "only {} GPUs used", used.len());

    // And it should beat the 2-GPU result (more parallel branches fit).
    let two = Cluster::two_gpus();
    let two_outcome = Pesto::new(PestoConfig::fast()).place(&graph, &two).unwrap();
    assert!(
        outcome.makespan_us <= two_outcome.makespan_us * 1.05,
        "4-GPU {} vs 2-GPU {}",
        outcome.makespan_us,
        two_outcome.makespan_us
    );
}

#[test]
fn pipeline_avoids_a_degraded_link() {
    // gpu0 <-> gpu1 is 50x slower than nominal in both directions: the
    // optimizer should cut far fewer edges across that pair than across a
    // healthy cluster, and the resulting plan must not be slower than
    // running everything on one GPU.
    let base = Cluster::two_gpus();
    let degraded = base
        .clone()
        .with_link_speed(base.gpu(0), base.gpu(1), 0.02)
        .with_link_speed(base.gpu(1), base.gpu(0), 0.02);
    let graph = ModelSpec::rnnlm(1, 64).generate_scaled(4, 3, 0.25);

    let outcome = Pesto::new(PestoConfig::fast())
        .place(&graph, &degraded)
        .unwrap();
    let serial = graph.total_compute_us();
    assert!(
        outcome.makespan_us <= serial * 1.02,
        "degraded-link plan {} must not be worse than serial {serial}",
        outcome.makespan_us
    );

    // The plan executes identically when re-simulated on the same cluster.
    let report = Simulator::new(&graph, &degraded, CommModel::default_v100())
        .with_seed(0xbe57)
        .run(&outcome.plan)
        .unwrap();
    assert!((report.makespan_us - outcome.makespan_us).abs() < outcome.makespan_us * 0.25);
}

#[test]
fn peak_memory_is_bounded_by_resident_accounting() {
    // The temporal peak (activations only) never exceeds the resident sum
    // (activations + weights) the placement-time memory rule uses — i.e.
    // the paper's simple rule is conservative, as claimed.
    let cluster = Cluster::two_gpus();
    let graph = ModelSpec::transformer(2, 2, 64).generate(4, 3);
    let outcome = Pesto::new(PestoConfig::fast())
        .place(&graph, &cluster)
        .unwrap();
    let report = Simulator::new(&graph, &cluster, CommModel::default_v100())
        .with_seed(0xbe57)
        .run(&outcome.plan)
        .unwrap();
    let profile = report.peak_memory(&graph, &outcome.plan.placement, cluster.device_count());
    let resident = outcome.plan.placement.memory_per_device(&graph, &cluster);
    for (d, (&peak, &res)) in profile
        .peak_transient_bytes
        .iter()
        .zip(&resident)
        .enumerate()
    {
        assert!(
            peak <= res.saturating_mul(2),
            "device {d}: transient peak {peak} far above resident accounting {res}"
        );
    }
}
