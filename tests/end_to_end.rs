//! Cross-crate integration tests: the full pipeline on reduced variants of
//! every model family, error propagation, and determinism.

use pesto::cost::CommModel;
use pesto::graph::Cluster;
use pesto::models::ModelSpec;
use pesto::sim::Simulator;
use pesto::{evaluate_plan, Pesto, PestoConfig, PestoError, StepOutcome};

fn fast() -> PestoConfig {
    PestoConfig::fast()
}

#[test]
fn pipeline_handles_every_model_family() {
    let cluster = Cluster::two_gpus();
    for spec in [
        ModelSpec::rnnlm(1, 64),
        ModelSpec::nmt(1, 64),
        ModelSpec::transformer(2, 2, 64),
        ModelSpec::nasnet(3, 16),
    ] {
        let graph = spec.generate(4, 1);
        let outcome = Pesto::new(fast())
            .place(&graph, &cluster)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        assert!(outcome.makespan_us > 0.0, "{}", spec.label());
        outcome
            .plan
            .validate(&graph, &cluster)
            .unwrap_or_else(|e| panic!("{}: invalid plan: {e}", spec.label()));
        // The plan must actually execute on the simulator.
        let report = Simulator::new(&graph, &cluster, CommModel::default_v100())
            .run(&outcome.plan)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        assert!((report.makespan_us - outcome.makespan_us).abs() < outcome.makespan_us * 0.2);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cluster = Cluster::two_gpus();
    let graph = ModelSpec::nasnet(3, 16).generate(32, 5);
    let a = Pesto::new(fast()).place(&graph, &cluster).unwrap();
    let b = Pesto::new(fast()).place(&graph, &cluster).unwrap();
    assert_eq!(a.plan, b.plan);
    assert!((a.makespan_us - b.makespan_us).abs() < 1e-9);
}

#[test]
fn pipeline_reports_oom_when_nothing_fits() {
    // Tiny GPUs that cannot hold the model under any split.
    let cluster = Cluster::homogeneous(2, 1 << 20); // 1 MiB GPUs
    let graph = ModelSpec::nasnet(3, 16).generate(32, 1);
    let err = Pesto::new(fast()).place(&graph, &cluster).unwrap_err();
    assert!(
        matches!(err, PestoError::Solve(_)),
        "expected a solver/OOM error, got {err}"
    );
}

#[test]
fn pesto_beats_or_matches_single_gpu_serial_execution() {
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    let graph = ModelSpec::transformer(2, 2, 128).generate(4, 2);
    let outcome = Pesto::new(fast()).place(&graph, &cluster).unwrap();
    // Serial lower bound sanity: Pesto's makespan is at least the critical
    // path and at most serial execution (placing everything on one GPU is
    // always in the search space).
    assert!(outcome.makespan_us >= graph.critical_path_us() - 1e-6);
    assert!(
        outcome.makespan_us <= graph.total_compute_us() * 1.05,
        "pesto {} vs serial {}",
        outcome.makespan_us,
        graph.total_compute_us()
    );
    let step = evaluate_plan(&graph, &cluster, &comm, &outcome.plan, 3);
    assert!(matches!(step, StepOutcome::Ok { .. }));
}

#[test]
fn hardware_scaling_changes_decisions_consistently() {
    use pesto::cost::HardwareScaling;
    let cluster = Cluster::two_gpus();
    let base = ModelSpec::rnnlm(1, 64).generate(4, 3);
    // 4x faster compute shrinks the makespan by roughly 4x or less
    // (communication does not scale).
    let slow = Pesto::new(fast()).place(&base, &cluster).unwrap();
    let fast_graph = HardwareScaling::new(4.0, 1.0).scale_graph(base.clone());
    let fast_run = Pesto::new(fast()).place(&fast_graph, &cluster).unwrap();
    assert!(fast_run.makespan_us < slow.makespan_us);
    assert!(fast_run.makespan_us > slow.makespan_us / 8.0);
}

#[test]
fn congestion_blind_pipeline_still_produces_valid_plans() {
    let cluster = Cluster::two_gpus();
    let graph = ModelSpec::rnnlm(1, 64).generate(4, 3);
    let config = PestoConfig {
        congestion_aware: false,
        ..PestoConfig::fast()
    };
    let outcome = Pesto::new(config).place(&graph, &cluster).unwrap();
    // The plan was chosen under a blind model but must still execute.
    let report = Simulator::new(&graph, &cluster, CommModel::default_v100())
        .run(&outcome.plan)
        .unwrap();
    assert!(report.makespan_us > 0.0);
}
