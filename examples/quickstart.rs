//! Quickstart: place and schedule a DNN training step across two GPUs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pesto::cost::CommModel;
use pesto::graph::Cluster;
use pesto::models::ModelSpec;
use pesto::sim::Simulator;
use pesto::{Pesto, PestoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A training DAG. Here: a reduced NASNet; swap in any generator or
    //    build your own graph with `pesto::graph::OpGraph`.
    let spec = ModelSpec::nasnet(4, 32);
    let graph = spec.generate(spec.paper_batch(), 42);
    println!(
        "model {}: {} ops, {} edges, {:.1} GiB total footprint",
        graph.name(),
        graph.op_count(),
        graph.edge_count(),
        graph.total_memory_bytes() as f64 / (1u64 << 30) as f64,
    );

    // 2. The paper's testbed: one CPU + two 16 GiB GPUs (NVlink + PCIe).
    let cluster = Cluster::two_gpus();

    // 3. Run the Pesto pipeline: profile -> coarsen -> solve -> expand.
    let pesto = Pesto::new(PestoConfig::fast());
    let outcome = pesto.place(&graph, &cluster)?;
    println!(
        "pesto: {} -> {} coarse vertices, {:?} path, placement took {:?}",
        graph.op_count(),
        outcome.coarse_op_count,
        outcome.path,
        outcome.placement_time,
    );
    println!(
        "per-step training time: {:.2} ms",
        outcome.makespan_us / 1000.0
    );

    // 4. Inspect the schedule on the simulator.
    let report = Simulator::new(&graph, &cluster, CommModel::default_v100()).run(&outcome.plan)?;
    println!(
        "gpu0 utilization {:.0}%, gpu1 utilization {:.0}%, {} cross-GPU transfers ({:.1} MiB)",
        report.device_utilization(cluster.gpu(0)) * 100.0,
        report.device_utilization(cluster.gpu(1)) * 100.0,
        report.transfer_spans.len(),
        report.total_transferred_bytes() as f64 / (1u64 << 20) as f64,
    );
    Ok(())
}
