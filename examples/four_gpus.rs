//! Scaling beyond the paper's two-GPU testbed: the §3.2.2 multi-GPU ILP
//! extension (bit-pair placement encoding) on a small instance, and the
//! hybrid solver on a reduced model across four GPUs.
//!
//! ```sh
//! cargo run --release --example four_gpus
//! ```

use pesto::cost::CommModel;
use pesto::graph::{Cluster, DeviceKind, OpGraph};
use pesto::ilp::{HybridConfig, HybridSolver, MultiGpuIlp};
use pesto::milp::MilpConfig;
use pesto::models::ModelSpec;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::homogeneous(4, 16 * 1024 * 1024 * 1024);
    let comm = CommModel::default_v100();

    // --- Exact: four independent pipelines must spread over four GPUs.
    let mut g = OpGraph::new("four-pipelines");
    for p in 0..4 {
        let a = g.add_op(format!("p{p}/pre"), DeviceKind::Gpu, 20.0, 1 << 20);
        let b = g.add_op(format!("p{p}/main"), DeviceKind::Gpu, 120.0, 8 << 20);
        g.add_edge(a, b, 1 << 20)?;
    }
    let graph = g.freeze()?;
    let model = MultiGpuIlp::build(&graph, &cluster, &comm)?;
    println!(
        "exact 4-GPU ILP: {} binaries over {} placement bits",
        model.milp().binaries().len(),
        model.placement_bits(),
    );
    let out = model.solve(&MilpConfig::with_time_limit(Duration::from_secs(30)))?;
    println!(
        "optimal C_max {:.1} us (proven: {}); serial would be 560",
        out.cmax_us, out.proven_optimal
    );
    for id in graph.op_ids() {
        println!(
            "  {:<10} -> {}",
            graph.op(id).name(),
            cluster.devices()[out.plan.placement.device(id).index()].name()
        );
    }

    // --- Hybrid: a reduced NASNet over four GPUs.
    let spec = ModelSpec::nasnet(4, 24);
    let nas = spec.generate(spec.paper_batch(), 5);
    let hybrid = HybridSolver::new(HybridConfig::quick()).solve(&nas, &cluster, &comm)?;
    let used: std::collections::HashSet<_> = nas
        .op_ids()
        .filter(|&i| nas.op(i).kind() == DeviceKind::Gpu)
        .map(|i| hybrid.plan.placement.device(i))
        .collect();
    println!(
        "\nhybrid on {} ({} ops): {:.2} ms per step across {} GPUs",
        spec.label(),
        nas.op_count(),
        hybrid.makespan_us / 1000.0,
        used.len(),
    );
    Ok(())
}
