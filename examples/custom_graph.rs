//! Building a custom operation DAG by hand and solving it with the *exact*
//! Pesto ILP (provably optimal placement + schedule on small instances).
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use pesto::cost::CommModel;
use pesto::graph::{to_dot, Cluster, DeviceKind, OpGraph};
use pesto::ilp::{IlpConfig, IlpModel, MemoryRule};
use pesto::milp::MilpConfig;
use pesto::sim::Simulator;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small branchy pipeline: preprocess on CPU, two parallel GPU
    // branches of different weights, a merge, and a readback.
    let mut g = OpGraph::new("custom-pipeline");
    let load = g.add_op("load", DeviceKind::Cpu, 30.0, 1 << 10);
    let launch = g.add_op("launch", DeviceKind::Kernel, 1.0, 64);
    let heavy = g.add_op("conv_heavy", DeviceKind::Gpu, 400.0, 32 << 20);
    let light_a = g.add_op("norm", DeviceKind::Gpu, 80.0, 8 << 20);
    let light_b = g.add_op("activation", DeviceKind::Gpu, 90.0, 8 << 20);
    let merge = g.add_op("merge", DeviceKind::Gpu, 50.0, 4 << 20);
    let readback = g.add_op("readback", DeviceKind::Cpu, 10.0, 1 << 10);
    g.add_edge(load, launch, 1 << 10)?;
    g.add_edge(launch, heavy, 64)?;
    g.add_edge(launch, light_a, 64)?;
    g.add_edge(light_a, light_b, 4 << 20)?;
    g.add_edge(heavy, merge, 8 << 20)?;
    g.add_edge(light_b, merge, 4 << 20)?;
    g.add_edge(merge, readback, 1 << 20)?;
    let graph = g.freeze()?;

    // Export for visual inspection (pipe into `dot -Tpng`).
    println!("GraphViz:\n{}", to_dot(&graph));

    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    let config = IlpConfig {
        congestion: true,
        memory: MemoryRule::Capacity,
        milp: MilpConfig::with_time_limit(Duration::from_secs(30)),
    };
    let model = IlpModel::build(&graph, &cluster, &comm, &config)?;
    println!(
        "ILP: {} variables, {} constraints, horizon {:.0} us",
        model.milp().lp().var_count(),
        model.milp().lp().constraint_count(),
        model.horizon_us(),
    );
    let outcome = model.solve(&config.milp)?;
    println!(
        "optimal C_max {:.1} us (proven optimal: {}, {} B&B nodes)",
        outcome.cmax_us, outcome.proven_optimal, outcome.nodes_explored,
    );
    for id in graph.op_ids() {
        println!(
            "  {:<12} -> {}",
            graph.op(id).name(),
            cluster.devices()[outcome.plan.placement.device(id).index()].name(),
        );
    }

    let report = Simulator::new(&graph, &cluster, comm).run(&outcome.plan)?;
    println!(
        "\nsimulated: {:.1} us\n{}",
        report.makespan_us,
        report.timeline(&cluster, 72)
    );
    Ok(())
}
