//! Hardware what-if analysis (the paper's Figure 8 methodology): how do
//! Pesto's decisions change with faster devices or slower interconnects?
//!
//! ```sh
//! cargo run --release --example hardware_whatif
//! ```

use pesto::baselines::expert;
use pesto::cost::{CommModel, HardwareScaling};
use pesto::graph::Cluster;
use pesto::models::ModelSpec;
use pesto::{evaluate_plan, Pesto, PestoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::two_gpus();
    let base_comm = CommModel::default_v100();
    let spec = ModelSpec::nmt(1, 128);
    let base_graph = spec.generate(spec.paper_batch(), 3);

    println!("== compute-speed sweep (1x = V100) ==");
    for speed in [0.5, 1.0, 4.0] {
        let graph = HardwareScaling::new(speed, 1.0).scale_graph(base_graph.clone());
        let expert_step = evaluate_plan(&graph, &cluster, &base_comm, &expert(&graph, &cluster), 1);
        let pesto = Pesto::with_comm(base_comm, PestoConfig::fast()).place(&graph, &cluster)?;
        let pesto_step = evaluate_plan(&graph, &cluster, &base_comm, &pesto.plan, 1);
        let (e, p) = (
            expert_step.makespan_us().unwrap_or(f64::NAN),
            pesto_step.makespan_us().unwrap_or(f64::NAN),
        );
        println!(
            "  {speed:>4.1}x compute: expert {:.1} ms, pesto {:.1} ms ({:+.1}%)",
            e / 1e3,
            p / 1e3,
            (p / e - 1.0) * 100.0
        );
    }

    println!("== interconnect-speed sweep (1x = NVlink, 0.1x ~ PCIe) ==");
    for speed in [0.1, 1.0, 2.0] {
        let comm = HardwareScaling::new(1.0, speed).scale_comm(&base_comm);
        let expert_step = evaluate_plan(
            &base_graph,
            &cluster,
            &comm,
            &expert(&base_graph, &cluster),
            1,
        );
        let pesto = Pesto::with_comm(comm, PestoConfig::fast()).place(&base_graph, &cluster)?;
        let pesto_step = evaluate_plan(&base_graph, &cluster, &comm, &pesto.plan, 1);
        println!(
            "  {speed:>4.1}x comm: expert {:.1} ms, pesto {:.1} ms, pesto cut edges {}",
            expert_step.makespan_us().unwrap_or(f64::NAN) / 1e3,
            pesto_step.makespan_us().unwrap_or(f64::NAN) / 1e3,
            pesto.plan.placement.cut_edges(&base_graph),
        );
    }
    println!("(Pesto places more conservatively as links slow down; Expert is oblivious)");
    Ok(())
}
