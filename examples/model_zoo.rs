//! Model zoo: generate each of the paper's model families and compare the
//! Expert baseline against Pesto on a reduced variant of each.
//!
//! ```sh
//! cargo run --release --example model_zoo
//! ```

use pesto::baselines::expert;
use pesto::cost::CommModel;
use pesto::graph::Cluster;
use pesto::models::ModelSpec;
use pesto::{evaluate_plan, Pesto, PestoConfig, StepOutcome};

fn show(outcome: &StepOutcome) -> String {
    match outcome {
        StepOutcome::Ok { makespan_us } => format!("{:.1} ms", makespan_us / 1000.0),
        StepOutcome::Oom { devices } => format!("OOM on {} device(s)", devices.len()),
        StepOutcome::Failed { reason } => format!("failed: {reason}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::two_gpus();
    let comm = CommModel::default_v100();
    // Reduced variants of all four families (the full paper variants run in
    // the `expfig fig7` harness).
    let zoo = [
        ModelSpec::rnnlm(2, 256),
        ModelSpec::nmt(1, 128),
        ModelSpec::transformer(2, 4, 256),
        ModelSpec::nasnet(4, 24),
    ];
    println!(
        "{:<24} {:>7} {:>8} {:>12} {:>12}",
        "variant", "ops", "mem GiB", "expert", "pesto"
    );
    for spec in zoo {
        let graph = spec.generate(spec.paper_batch(), 7);
        let exp = evaluate_plan(&graph, &cluster, &comm, &expert(&graph, &cluster), 7);
        let pesto = Pesto::new(PestoConfig::fast()).place(&graph, &cluster);
        let pesto_outcome = match pesto {
            Ok(o) => evaluate_plan(&graph, &cluster, &comm, &o.plan, 7),
            Err(e) => StepOutcome::Failed {
                reason: e.to_string(),
            },
        };
        println!(
            "{:<24} {:>7} {:>8.2} {:>12} {:>12}",
            spec.label(),
            graph.op_count(),
            graph.total_memory_bytes() as f64 / (1u64 << 30) as f64,
            show(&exp),
            show(&pesto_outcome),
        );
    }
    Ok(())
}
