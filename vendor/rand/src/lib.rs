//! Offline substitute for the `rand` crate covering the workspace's usage:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, statistically strong enough for simulation noise and
//! annealing moves (the only things the workspace draws from it).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit word (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only `seed_from_u64` is used by this workspace).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full RNG state from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open for floats and ints,
    /// inclusive ranges supported for ints).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the substitute for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
