//! Offline substitute for `crossbeam`, covering only `thread::scope` —
//! implemented directly over `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread (the payload is the panic value).
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to `scope`'s closure and to every spawned
    /// thread's closure (crossbeam passes the scope so threads can spawn
    /// siblings; the workspace only uses it as `|_|`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; a panic is returned as `Err`.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope in which borrowing non-`'static` data into
    /// spawned threads is allowed; all threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 2))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(total, 12);
    }
}
