//! Offline substitute for `proptest`: a deterministic property-testing
//! harness with the same macro/strategy surface the workspace uses.
//!
//! Differences from the real crate (accepted trade-offs):
//! * Sampling is seeded from the test function's name, so every run
//!   explores the same cases — failures are reproducible but no persistence
//!   file is needed.
//! * No shrinking: a failing case reports its index and message only.

#![forbid(unsafe_code)]

/// Runner configuration and failure types.
pub mod test_runner {
    use std::fmt;

    /// Configuration accepted via `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The inputs were rejected (e.g. by `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            }
        }
    }

    /// Deterministic RNG used for sampling (xoshiro256++, seeded from a
    /// string hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Derive a generator deterministically from `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: empty bound");
            self.next_u64() % bound
        }
    }
}

/// Strategies: deterministic samplers for input values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Sample a value, then sample from the strategy it induces.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = rng.next_u64() as u128 % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($idx:tt : $name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(0: A);
    tuple_strategy!(0: A, 1: B);
    tuple_strategy!(0: A, 1: B, 2: C);
    tuple_strategy!(0: A, 1: B, 2: C, 3: D);
    tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let _ = $body;
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond).to_string()),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        (0..max).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, f in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mapped_strategies_compose(e in evens(10), (a, b) in (0..5usize, 0..5usize)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn flat_map_and_vec(v in (1..6usize).prop_flat_map(|n| crate::collection::vec(0..100u64, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn any_and_just(seed in any::<u64>(), tag in Just("fixed")) {
            let _ = seed;
            prop_assert_eq!(tag, "fixed");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = crate::collection::vec(0..1000u64, 0..8usize);
        let mut r1 = TestRng::deterministic("x");
        let mut r2 = TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
