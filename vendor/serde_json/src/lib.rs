//! Offline substitute for `serde_json`: compact + pretty emitters and a
//! recursive-descent parser over `serde::Content` (aliased as [`Value`]).
//!
//! Fidelity notes:
//! * Floats are emitted with Rust's `{:?}` shortest-round-trip formatting,
//!   so every finite `f64` survives a serialize → parse cycle
//!   **bit-identically** (the checkpoint/resume machinery depends on this);
//!   integral floats keep a `.0` suffix so they re-parse as floats.
//! * Non-finite floats serialize as `null`, matching the real crate.
//! * Object key order is preserved (insertion order), as with the real
//!   crate's `preserve_order` feature.

#![forbid(unsafe_code)]

use std::fmt;

/// A parsed JSON document (alias of the serde interchange tree).
pub type Value = serde::Content;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("io error: {e}")))
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_content(&value).map_err(Error::from)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value).map_err(Error::from)
}

fn emit(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // {:?} keeps a ".0" on integral floats and is the shortest
                // representation that round-trips exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let second = self.hex4()?;
                                    0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF)
                                } else {
                                    return Err(self.err("lone leading surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                // Negative integer: i64 if it fits, else f64.
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(to_string(&1u8).unwrap(), "1");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<String>("\"x\\u00e9\"").unwrap(), "x\u{e9}");
    }

    #[test]
    fn f64_round_trip_is_bit_identical() {
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.5e-17,
            123456789.123456789,
            0.0,
            -0.0,
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn value_parsing_and_indexing() {
        let v: Value =
            from_str("{\"args\": {\"step\": 3}, \"list\": [1, 2.5, \"x\", null, true]}")
                .unwrap();
        assert!(v.is_object());
        assert_eq!(v["args"]["step"].as_u64(), Some(3));
        assert_eq!(v["list"].as_array().unwrap().len(), 5);
        assert_eq!(v["list"][1].as_f64(), Some(2.5));
        assert!(v["nope"]["deeper"].is_null());
        assert!(v["list"][2] == "x");
    }

    #[test]
    fn pretty_output_contains_indentation() {
        let v: Value = from_str("{\"a\": [1, 2]}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
