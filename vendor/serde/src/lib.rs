//! Offline substitute for `serde`.
//!
//! The real serde decouples data structures from formats through a visitor
//! API. This substitute collapses that: both traits convert through a
//! single JSON-shaped [`Content`] tree, which is exactly sufficient for the
//! one format this workspace uses (`serde_json`) while keeping the same
//! user-facing trait and derive-macro names. Numbers preserve their
//! u64/i64/f64 identity so checkpoint round-trips are bit-identical.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped interchange tree all (de)serialization goes through.
/// `serde_json::Value` is an alias for this type.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept distinct from `F64` for exactness).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned-integer accessor (accepts non-negative `I64` too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Signed-integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Float accessor (any numeric variant widens to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Object accessor (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Is this value a JSON object?
    pub fn is_object(&self) -> bool {
        matches!(self, Content::Map(_))
    }

    /// Is this value a JSON array?
    pub fn is_array(&self) -> bool {
        matches!(self, Content::Seq(_))
    }

    /// Is this value `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Is this value a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Content::Str(_))
    }

    /// Is this value a number?
    pub fn is_number(&self) -> bool {
        matches!(self, Content::U64(_) | Content::I64(_) | Content::F64(_))
    }

    /// Non-panicking lookup: object key or array index.
    pub fn get<I: ContentIndex>(&self, index: I) -> Option<&Content> {
        index.index_into(self)
    }
}

/// Index types usable with [`Content::get`] and `value[...]`.
pub trait ContentIndex {
    /// Look `self` up in `c`.
    fn index_into<'a>(&self, c: &'a Content) -> Option<&'a Content>;
}

impl ContentIndex for str {
    fn index_into<'a>(&self, c: &'a Content) -> Option<&'a Content> {
        match c {
            Content::Map(m) => m.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ContentIndex for &str {
    fn index_into<'a>(&self, c: &'a Content) -> Option<&'a Content> {
        (**self).index_into(c)
    }
}

impl ContentIndex for String {
    fn index_into<'a>(&self, c: &'a Content) -> Option<&'a Content> {
        self.as_str().index_into(c)
    }
}

impl ContentIndex for usize {
    fn index_into<'a>(&self, c: &'a Content) -> Option<&'a Content> {
        match c {
            Content::Seq(s) => s.get(*self),
            _ => None,
        }
    }
}

impl<I: ContentIndex> std::ops::Index<I> for Content {
    type Output = Content;

    /// Missing keys/indices yield `Null` (as in `serde_json`), so lookups
    /// chain: `v["args"]["step"]`.
    fn index(&self, index: I) -> &Content {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Content {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Content> for str {
    fn eq(&self, other: &Content) -> bool {
        other == self
    }
}
impl PartialEq<Content> for &str {
    fn eq(&self, other: &Content) -> bool {
        other == self
    }
}
impl PartialEq<Content> for String {
    fn eq(&self, other: &Content) -> bool {
        other == self
    }
}

/// Deserialization error (also re-exported as `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type convertible into the [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into the interchange tree.
    fn to_content(&self) -> Content;
}

/// A type reconstructible from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the interchange tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent from the input. Only
    /// `Option<T>` admits one (−> `None`), mirroring serde_derive.
    fn from_missing() -> Result<Self, DeError> {
        Err(DeError::custom("missing field"))
    }
}

/// Module aliases mirroring serde's layout (`serde::ser::Serialize`, …).
pub mod ser {
    pub use crate::Serialize;
}

/// Module aliases mirroring serde's layout (`serde::de::DeserializeOwned`).
pub mod de {
    pub use crate::DeError;
    pub use crate::Deserialize;
    pub use crate::Deserialize as DeserializeOwned;
}

/// Derive-internal helper: ordered-map key lookup.
pub fn __find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom("unsigned integer out of range"))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError::custom("expected signed integer"))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom("signed integer out of range"))
            }
        }
    )*};
}
sint_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            // Real serde_json writes non-finite floats as null; accept the
            // round-trip back as NaN so such fields still deserialize.
            Content::Null => Ok(f64::NAN),
            _ => c.as_f64().ok_or_else(|| DeError::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items = c
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_content).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! tuple_impl {
    ($len:expr => $($idx:tt : $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = c
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    };
}
tuple_impl!(1 => 0: A);
tuple_impl!(2 => 0: A, 1: B);
tuple_impl!(3 => 0: A, 1: B, 2: C);
tuple_impl!(4 => 0: A, 1: B, 2: C, 3: D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_chaining_returns_null_for_missing() {
        let v = Content::Map(vec![(
            "args".to_string(),
            Content::Map(vec![("step".to_string(), Content::U64(3))]),
        )]);
        assert_eq!(v["args"]["step"].as_u64(), Some(3));
        assert!(v["missing"]["deeper"].is_null());
    }

    #[test]
    fn string_equality_both_directions() {
        let v = Content::Str("X".to_string());
        assert!(v == "X");
        assert!("X" == v);
        assert!(v != "Y");
    }

    #[test]
    fn numeric_accessors_preserve_identity() {
        assert_eq!(Content::U64(7).as_f64(), Some(7.0));
        assert_eq!(Content::I64(-7).as_u64(), None);
        assert_eq!(Content::U64(7).as_i64(), Some(7));
        assert_eq!(Content::F64(1.5).as_u64(), None);
    }

    #[test]
    fn option_handles_missing_and_null() {
        assert_eq!(Option::<u32>::from_missing().unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(5)).unwrap(),
            Some(5)
        );
        assert!(u32::from_missing().is_err());
    }

    #[test]
    fn array_round_trip() {
        let a: [u64; 4] = [1, 2, u64::MAX, 0];
        let c = a.to_content();
        assert_eq!(<[u64; 4]>::from_content(&c).unwrap(), a);
    }
}
