//! Offline substitute for `criterion`: a minimal wall-clock benchmarking
//! harness with the same registration macros and builder surface. It
//! reports the mean time per iteration (no statistical analysis, outlier
//! detection, or HTML reports) — sufficient for the relative comparisons
//! recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across samples).
const MEASURE_TARGET: Duration = Duration::from_millis(400);

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name + parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the workload.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`: warm up, pick an iteration count that fills the
    /// measurement window, then record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: time a single call.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (MEASURE_TARGET.as_nanos() / self.samples.max(1) as u128).max(1);
        let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut count = 0usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            total += start.elapsed();
            count += iters;
            if total > MEASURE_TARGET * 4 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (by value, matching real
    /// criterion's builder so `Criterion::default().sample_size(10)`
    /// works in `criterion_group!` config position).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("bench: {name:<50} {:>12}/iter", human(b.mean_ns));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run and report one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
            mean_ns: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.id);
        println!("bench: {full:<50} {:>12}/iter", human(b.mean_ns));
        self
    }

    /// Run and report one parameterized benchmark; the closure receives
    /// the bencher and a reference to `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Registers a group of benchmark functions under one name. Supports the
/// plain form and the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1))
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| black_box(2 * 2))
        });
        group.finish();
    }
}
