//! Offline substitute for `serde_derive`: hand-rolled `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` working directly on the token stream (no
//! `syn`/`quote` available offline).
//!
//! Supported shapes — exactly what the workspace derives on:
//! named structs, tuple structs (newtype flattening like real serde), unit
//! structs, enums with unit/tuple/struct variants (externally tagged), the
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes, and
//! generic parameters copied verbatim (bounds as written on the type).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Kind {
    UnitStruct,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameter list as written, e.g. `<'a, T: Serialize>`.
    impl_generics: String,
    /// Bare argument list for the type, e.g. `<'a, T>`.
    ty_args: String,
    kind: Kind,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip leading attributes, returning their bracket groups for inspection.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<Group> {
    let mut groups = Vec::new();
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                groups.push(g.clone());
                *i += 1;
            }
            other => panic!("serde_derive: expected attribute brackets, got {other:?}"),
        }
    }
    groups
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

/// Extract a `#[serde(default)]` / `#[serde(default = "path")]` marker.
fn serde_default(attr_groups: &[Group]) -> Option<Option<String>> {
    for g in attr_groups {
        let toks: Vec<TokenTree> = g.stream().into_iter().collect();
        let [TokenTree::Ident(id), TokenTree::Group(inner)] = &toks[..] else {
            continue;
        };
        if id.to_string() != "serde" || inner.delimiter() != Delimiter::Parenthesis {
            continue;
        }
        let inner_toks: Vec<TokenTree> = inner.stream().into_iter().collect();
        let mut j = 0;
        while j < inner_toks.len() {
            if matches!(&inner_toks[j], TokenTree::Ident(w) if w.to_string() == "default") {
                if let Some(p) = inner_toks.get(j + 1) {
                    if is_punct(p, '=') {
                        if let Some(TokenTree::Literal(lit)) = inner_toks.get(j + 2) {
                            let raw = lit.to_string();
                            let path = raw.trim_matches('"').to_string();
                            return Some(Some(path));
                        }
                    }
                }
                return Some(None);
            }
            j += 1;
        }
    }
    None
}

/// Parse `<...>` generics if present; returns (as-written, bare-args).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (String, String) {
    if !matches!(tokens.get(*i), Some(t) if is_punct(t, '<')) {
        return (String::new(), String::new());
    }
    let mut depth = 0usize;
    let mut collected: Vec<TokenTree> = Vec::new();
    loop {
        let t = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics"))
            .clone();
        if is_punct(&t, '<') {
            depth += 1;
        } else if is_punct(&t, '>') {
            depth -= 1;
        }
        collected.push(t);
        *i += 1;
        if depth == 0 {
            break;
        }
    }
    let impl_generics = tokens_to_string(&collected);
    // Bare args: walk the params (without outer <>), keep each param's
    // leading lifetime or identifier, drop bounds and defaults.
    let params = &collected[1..collected.len() - 1];
    let mut args: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut j = 0;
    while j < params.len() {
        let t = &params[j];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            at_param_start = true;
            j += 1;
            continue;
        } else if at_param_start {
            if is_punct(t, '\'') {
                if let Some(TokenTree::Ident(id)) = params.get(j + 1) {
                    args.push(format!("'{id}"));
                    j += 2;
                    at_param_start = false;
                    continue;
                }
            } else if let TokenTree::Ident(id) = t {
                args.push(id.to_string());
            }
            at_param_start = false;
        }
        j += 1;
    }
    (impl_generics, format!("<{}>", args.join(", ")))
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string()
}

/// Parse `name: Type, ...` fields from a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        assert!(
            matches!(toks.get(i), Some(t) if is_punct(t, ':')),
            "serde_derive: expected ':' after field `{name}`"
        );
        i += 1;
        // Skip the type up to the next top-level comma ('<' depth-aware).
        let mut depth = 0isize;
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default: serde_default(&attrs),
        });
    }
    fields
}

/// Count comma-separated fields in a paren group's stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut depth = 0isize;
    let mut seg_nonempty = false;
    for t in &toks {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            if seg_nonempty {
                count += 1;
            }
            seg_nonempty = false;
            continue;
        }
        seg_nonempty = true;
    }
    if seg_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip anything up to the separating comma (e.g. a discriminant).
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let (impl_generics, ty_args) = parse_generics(&tokens, &mut i);
    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => Kind::UnitStruct,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        name,
        impl_generics,
        ty_args,
        kind,
    }
}

fn seq_of(exprs: impl Iterator<Item = String>) -> String {
    format!(
        "::serde::Content::Seq(::std::vec![{}])",
        exprs.collect::<Vec<_>>().join(", ")
    )
}

/// `#[derive(Serialize)]` — converts the item into a `serde::Content` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let inp = parse_input(input);
    let body = match &inp.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => seq_of(
            (0..*n).map(|k| format!("::serde::Serialize::to_content(&self.{k})")),
        ),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "Self::{vn}(__f0) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let inner = seq_of(
                                binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})")),
                            );
                            format!(
                                "Self::{vn}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Map(::std::vec![{}]))]),",
                                binders.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl{ig} ::serde::Serialize for {name}{ty} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        ig = inp.impl_generics,
        name = inp.name,
        ty = inp.ty_args,
    );
    out.parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Expression extracting field `f` out of the bindable `__m` map.
fn named_field_expr(owner: &str, f: &Field) -> String {
    let missing = match &f.default {
        None => format!(
            "::serde::Deserialize::from_missing().map_err(|_| ::serde::DeError::custom(\"{owner}: missing field `{0}`\"))?",
            f.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{0}: match ::serde::__find(__m, \"{0}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v).map_err(|__e| ::serde::DeError::custom(::std::format!(\"{owner}.{0}: {{}}\", __e)))?,\n\
             ::std::option::Option::None => {missing},\n\
         }}",
        f.name
    )
}

/// `#[derive(Deserialize)]` — reconstructs the item from a `serde::Content`
/// tree, with serde's externally-tagged enum representation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let inp = parse_input(input);
    let name = &inp.name;
    let body = match &inp.kind {
        Kind::UnitStruct => {
            "let _ = __c; ::std::result::Result::Ok(Self)".to_string()
        }
        Kind::NamedStruct(fields) => {
            let field_exprs: Vec<String> = fields
                .iter()
                .map(|f| named_field_expr(name, f))
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(__m) => ::std::result::Result::Ok(Self {{ {} }}),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected object\")),\n\
                 }}",
                field_exprs.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_content(__c).map_err(|__e| ::serde::DeError::custom(::std::format!(\"{name}: {{}}\", __e)))?))"
        ),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => ::std::result::Result::Ok(Self({})),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected {n}-element array\")),\n\
                 }}",
                elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => return ::std::result::Result::Ok(Self::{0}),",
                        v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_content(__v).map_err(|__e| ::serde::DeError::custom(::std::format!(\"{name}::{vn}: {{}}\", __e)))?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_content(&__s[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return match __v {{\n\
                                     ::serde::Content::Seq(__s) if __s.len() == {n} => ::std::result::Result::Ok(Self::{vn}({})),\n\
                                     _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}::{vn}: expected {n}-element array\")),\n\
                                 }},",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let owner = format!("{name}::{vn}");
                            let field_exprs: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_expr(&owner, f))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return match __v {{\n\
                                     ::serde::Content::Map(__m) => ::std::result::Result::Ok(Self::{vn} {{ {} }}),\n\
                                     _ => ::std::result::Result::Err(::serde::DeError::custom(\"{name}::{vn}: expected object\")),\n\
                                 }},",
                                field_exprs.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Content::Str(__s) = __c {{\n\
                     match __s.as_str() {{\n\
                         {unit}\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"{name}: unknown variant `{{}}`\", __s))),\n\
                     }}\n\
                 }}\n\
                 if let ::serde::Content::Map(__outer) = __c {{\n\
                     if __outer.len() == 1 {{\n\
                         let (__k, __v) = &__outer[0];\n\
                         match __k.as_str() {{\n\
                             {tagged}\n\
                             _ => return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"{name}: unknown variant `{{}}`\", __k))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected externally tagged variant\"))",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl{ig} ::serde::Deserialize for {name}{ty} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
        ig = inp.impl_generics,
        name = inp.name,
        ty = inp.ty_args,
    );
    out.parse().expect("serde_derive: generated invalid Deserialize impl")
}
