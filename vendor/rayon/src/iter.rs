//! The data-parallel iterator subset.
//!
//! Internally every parallel iterator is a *fold over an index range*: the
//! base sources (ranges, slices) own an index space `0..len`, and
//! combinators (`map`, `filter`, `enumerate`, …) adapt the per-item fold
//! without changing that index space. Drivers (`reduce`, `for_each`, …)
//! split the index space into one contiguous chunk per thread, fold each
//! chunk sequentially, and combine chunk results in chunk order — so any
//! associative combine yields the same answer at every thread count.

use crate::current_num_threads;
use std::cmp::Ordering as CmpOrdering;
use std::ops::Range;

fn effective_threads(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// The core parallel-iterator trait (a strict subset of the real crate's).
///
/// The `reduce`/`reduce_with` operators must be associative for the result
/// to be thread-count independent — the same contract the real rayon
/// documents.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Item type produced by the iterator.
    type Item: Send;

    #[doc(hidden)]
    fn index_len(&self) -> usize;

    #[doc(hidden)]
    fn fold_range<T, F>(&self, range: Range<usize>, init: T, f: &mut F) -> T
    where
        F: FnMut(T, Self::Item) -> T;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Keeps only items for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { inner: self, f }
    }

    /// Maps and filters in one pass.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
    {
        FilterMap { inner: self, f }
    }

    /// Reduces all items with `op`, seeding each chunk with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let n = self.index_len();
        let threads = effective_threads(n);
        if threads <= 1 {
            return self.fold_range(0..n, identity(), &mut |a, b| op(a, b));
        }
        let chunk = n.div_ceil(threads);
        let parts: Vec<Self::Item> = std::thread::scope(|s| {
            let this = &self;
            let identity = &identity;
            let op = &op;
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    let lo = k * chunk;
                    let hi = ((k + 1) * chunk).min(n);
                    s.spawn(move || this.fold_range(lo..hi, identity(), &mut |a, b| op(a, b)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel fold panicked"))
                .collect()
        });
        parts
            .into_iter()
            .reduce(|a, b| op(a, b))
            .unwrap_or_else(identity)
    }

    /// Reduces items with `op`; `None` for an empty iterator.
    fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let n = self.index_len();
        let threads = effective_threads(n);
        let fold_opt = |this: &Self, range: Range<usize>, op: &OP| -> Option<Self::Item> {
            this.fold_range(range, None, &mut |acc: Option<Self::Item>, item| match acc {
                None => Some(item),
                Some(prev) => Some(op(prev, item)),
            })
        };
        if threads <= 1 {
            return fold_opt(&self, 0..n, &op);
        }
        let chunk = n.div_ceil(threads);
        let parts: Vec<Option<Self::Item>> = std::thread::scope(|s| {
            let this = &self;
            let op = &op;
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    let lo = k * chunk;
                    let hi = ((k + 1) * chunk).min(n);
                    s.spawn(move || fold_opt(this, lo..hi, op))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel fold panicked"))
                .collect()
        });
        parts
            .into_iter()
            .flatten()
            .reduce(|a, b| op(a, b))
    }

    /// The minimum item under `cmp`; the **first** of equal minima (chunk
    /// order = index order, so this matches a sequential scan that only
    /// replaces the incumbent on a strict improvement).
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> CmpOrdering + Send + Sync,
    {
        self.reduce_with(|a, b| {
            if cmp(&b, &a) == CmpOrdering::Less {
                b
            } else {
                a
            }
        })
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let n = self.index_len();
        let threads = effective_threads(n);
        if threads <= 1 {
            self.fold_range(0..n, (), &mut |(), item| f(item));
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            let this = &self;
            let f = &f;
            for k in 0..threads {
                let lo = k * chunk;
                let hi = ((k + 1) * chunk).min(n);
                s.spawn(move || this.fold_range(lo..hi, (), &mut |(), item| f(item)));
            }
        });
    }

    /// Number of items (after filtering).
    fn count(self) -> usize {
        self.map(|_| 1usize).reduce(|| 0, |a, b| a + b)
    }
}

/// Parallel iterators that yield exactly one item per base index, in index
/// order — the prerequisite for `enumerate`. (`filter` forfeits this,
/// exactly like the real crate's `IndexedParallelIterator`.)
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }
}

/// Converts a value into a parallel iterator.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Performs the conversion.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on shared references.
pub trait IntoParallelRefIterator<'d> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: Send + 'd;
    /// Performs the conversion.
    fn par_iter(&'d self) -> Self::Iter;
}

/// `.par_iter_mut()` on mutable slices / vectors.
pub trait IntoParallelRefMutIterator<'d> {
    /// Element type.
    type Elem: Send + 'd;
    /// Performs the conversion.
    fn par_iter_mut(&'d mut self) -> SliceIterMut<'d, Self::Elem>;
}

// --- Sources -----------------------------------------------------------

/// Parallel iterator over `Range<usize>`.
#[derive(Clone)]
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn index_len(&self) -> usize {
        self.range.len()
    }

    fn fold_range<T, F>(&self, range: Range<usize>, init: T, f: &mut F) -> T
    where
        F: FnMut(T, usize) -> T,
    {
        let mut acc = init;
        for i in range {
            acc = f(acc, self.range.start + i);
        }
        acc
    }
}

impl IndexedParallelIterator for RangeIter {}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'d, T> {
    slice: &'d [T],
}

impl<'d, T: Sync> ParallelIterator for SliceIter<'d, T> {
    type Item = &'d T;

    fn index_len(&self) -> usize {
        self.slice.len()
    }

    fn fold_range<A, F>(&self, range: Range<usize>, init: A, f: &mut F) -> A
    where
        F: FnMut(A, &'d T) -> A,
    {
        let mut acc = init;
        for item in &self.slice[range] {
            acc = f(acc, item);
        }
        acc
    }
}

impl<'d, T: Sync> IndexedParallelIterator for SliceIter<'d, T> {}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Iter = SliceIter<'d, T>;
    type Item = &'d T;

    fn par_iter(&'d self) -> SliceIter<'d, T> {
        SliceIter { slice: self }
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Iter = SliceIter<'d, T>;
    type Item = &'d T;

    fn par_iter(&'d self) -> SliceIter<'d, T> {
        SliceIter { slice: self }
    }
}

// --- Combinators -------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;

    fn index_len(&self) -> usize {
        self.inner.index_len()
    }

    fn fold_range<T, G>(&self, range: Range<usize>, init: T, g: &mut G) -> T
    where
        G: FnMut(T, R) -> T,
    {
        self.inner
            .fold_range(range, init, &mut |acc, item| g(acc, (self.f)(item)))
    }
}

impl<I, R, F> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, F> {
    inner: I,
    f: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;

    fn index_len(&self) -> usize {
        self.inner.index_len()
    }

    fn fold_range<T, G>(&self, range: Range<usize>, init: T, g: &mut G) -> T
    where
        G: FnMut(T, I::Item) -> T,
    {
        self.inner.fold_range(range, init, &mut |acc, item| {
            if (self.f)(&item) {
                g(acc, item)
            } else {
                acc
            }
        })
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> Option<R> + Send + Sync,
{
    type Item = R;

    fn index_len(&self) -> usize {
        self.inner.index_len()
    }

    fn fold_range<T, G>(&self, range: Range<usize>, init: T, g: &mut G) -> T
    where
        G: FnMut(T, R) -> T,
    {
        self.inner
            .fold_range(range, init, &mut |acc, item| match (self.f)(item) {
                Some(mapped) => g(acc, mapped),
                None => acc,
            })
    }
}

/// See [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);

    fn index_len(&self) -> usize {
        self.inner.index_len()
    }

    fn fold_range<T, G>(&self, range: Range<usize>, init: T, g: &mut G) -> T
    where
        G: FnMut(T, (usize, I::Item)) -> T,
    {
        let mut next = range.start;
        self.inner.fold_range(range, init, &mut |acc, item| {
            let i = next;
            next += 1;
            g(acc, (i, item))
        })
    }
}

impl<I> IndexedParallelIterator for Enumerate<I> where I: IndexedParallelIterator {}

// --- Mutable slices ----------------------------------------------------

/// Parallel iterator over `&mut [T]` (a dedicated type: the mutable
/// drivers hand out disjoint chunks rather than folding an index space).
pub struct SliceIterMut<'d, T> {
    slice: &'d mut [T],
}

impl<'d, T: Send> SliceIterMut<'d, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> EnumerateSliceMut<'d, T> {
        EnumerateSliceMut { slice: self.slice }
    }

    /// Runs `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        for_each_mut(self.slice, |_, x| f(x));
    }
}

/// Enumerated variant of [`SliceIterMut`].
pub struct EnumerateSliceMut<'d, T> {
    slice: &'d mut [T],
}

impl<'d, T: Send> EnumerateSliceMut<'d, T> {
    /// Runs `f` on every `(index, element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Send + Sync,
    {
        for_each_mut(self.slice, |i, x| f((i, x)));
    }
}

fn for_each_mut<T: Send, F>(slice: &mut [T], f: F)
where
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = slice.len();
    let threads = effective_threads(n);
    if threads <= 1 {
        for (i, x) in slice.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        for (k, part) in slice.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (off, x) in part.iter_mut().enumerate() {
                    f(k * chunk + off, x);
                }
            });
        }
    });
}

impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for [T] {
    type Elem = T;

    fn par_iter_mut(&'d mut self) -> SliceIterMut<'d, T> {
        SliceIterMut { slice: self }
    }
}

impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for Vec<T> {
    type Elem = T;

    fn par_iter_mut(&'d mut self) -> SliceIterMut<'d, T> {
        SliceIterMut { slice: self }
    }
}
