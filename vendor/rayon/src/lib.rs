//! Offline substitute for `rayon`, covering the API surface the workspace
//! uses: `join`, a global thread-count knob (`ThreadPoolBuilder` /
//! `current_num_threads`), and a small data-parallel iterator library
//! (`par_iter` / `par_iter_mut` / `into_par_iter` with `map`, `filter`,
//! `filter_map`, `enumerate`, `reduce`, `reduce_with`, `min_by`,
//! `for_each`).
//!
//! Unlike the real crate there is no work-stealing pool: each parallel
//! driver splits its index space into one contiguous chunk per thread and
//! runs them on `std::thread::scope` threads, then combines the per-chunk
//! results **in chunk order**. For associative reduction operators the
//! result is therefore identical for every thread count — the property the
//! solver kernels rely on for their `threads=1` bit-identicality contract.
//!
//! With a configured (or detected) thread count of 1 every driver runs
//! inline on the calling thread with no spawning at all, so the serial
//! path is exactly the sequential fold.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = not yet configured (use `RAYON_NUM_THREADS` or
/// [`available_parallelism`]).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default thread count when `build_global` was never called: the
/// `RAYON_NUM_THREADS` environment variable (like the real crate), else
/// the detected CPU count. Cached after the first read.
fn env_or_detected_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_parallelism)
    })
}

/// Number of threads parallel drivers will use.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => env_or_detected_threads(),
        n => n,
    }
}

/// Error from [`ThreadPoolBuilder::build_global`] (the global pool was
/// already initialized), mirroring the real crate's behavior.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the (process-global) thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder; `num_threads(0)` means "detect".
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count the global drivers use.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the thread count globally. Like the real crate, a second
    /// initialization fails — except that re-asserting the value already
    /// installed is accepted (the workspace configures the count once per
    /// process but may route through this call more than once).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let wanted = if self.num_threads == 0 {
            available_parallelism()
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.compare_exchange(0, wanted, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(()),
            Err(current) if current == wanted => Ok(()),
            Err(_) => Err(ThreadPoolBuildError(())),
        }
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        })
    }
}

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

pub mod slice {
    pub use crate::iter::{SliceIter, SliceIterMut};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_map_reduce() {
        let s = (0..1000usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 499_500);
    }

    #[test]
    fn slice_filter_min_by() {
        let v: Vec<i64> = (0..512).map(|i| (i * 37) % 101 - 50).collect();
        let expect = v.iter().copied().filter(|&x| x % 2 == 0).min();
        let got = v
            .par_iter()
            .map(|&x| x)
            .filter(|&x| x % 2 == 0)
            .min_by(|a, b| a.cmp(b));
        assert_eq!(got, expect);
    }

    #[test]
    fn enumerate_matches_serial() {
        let v: Vec<u32> = (0..300).map(|i| (i * 7) % 31).collect();
        let got = v
            .par_iter()
            .enumerate()
            .filter(|&(_, &x)| x > 15)
            .map(|(i, &x)| (i, x))
            .reduce_with(|a, b| if b.1 < a.1 || (b.1 == a.1 && b.0 < a.0) { b } else { a });
        let expect = v
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x > 15)
            .map(|(i, &x)| (i, x))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        assert_eq!(got, expect);
    }

    #[test]
    fn par_iter_mut_for_each_touches_every_element() {
        let mut v = vec![1u64; 257];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x += i as u64);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + i as u64);
        }
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
