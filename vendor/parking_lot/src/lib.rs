//! Offline substitute for `parking_lot`: a `Mutex` with parking_lot's
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (poisoning from a panicking holder is swallowed, as in parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
